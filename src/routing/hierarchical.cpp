#include "routing/hierarchical.hpp"

#include <algorithm>
#include <type_traits>
#include <vector>

#include "mesh/contracts.hpp"
#include "obs/metrics.hpp"
#include "routing/one_bend.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"

namespace oblivious {

namespace {

// Emission dispatch for one leg of the chain: node list or segments.
inline void append_leg(const Mesh& mesh, const Region& region,
                       const Coord& from, const Coord& to,
                       std::span<const int> order, Path& out) {
  append_path_in_region(mesh, region, from, to, order, out);
}
inline void append_leg(const Mesh& mesh, const Region& region,
                       const Coord& from, const Coord& to,
                       std::span<const int> order, SegmentPath& out) {
  append_segments_in_region(mesh, region, from, to, order, out);
}

// Resets a caller-owned output to the empty path at s (capacity retained).
inline void reset_path(NodeId s, NodeId /*t*/, Path& out) {
  out.nodes.clear();
  out.nodes.push_back(s);
}
inline void reset_path(NodeId s, NodeId t, SegmentPath& out) {
  out.segments.clear();
  out.source = s;
  out.dest = t;
}

// Connects the waypoints of a bitonic chain into `out`. `chain` holds the
// regions of the bitonic access-graph path (ascent over s, bridge, descent
// over t) and `up_count` how many of them belong to the ascent; waypoint i
// is drawn in chain[i] and the subpath to it stays inside the *enclosing*
// region -- chain[i] while ascending (it contains the previous, smaller
// region) and chain[i-1] while descending. The final leg runs to t inside
// the last chain region. Templated on the waypoint/order callbacks (no
// per-waypoint std::function allocations) and on the output
// representation; `out` is cleared first, so with retained capacity the
// whole emission is allocation-free.
template <typename PathT, typename WaypointFn, typename OrderFn>
void connect_chain_into(const Mesh& mesh, const std::vector<Region>& chain,
                        std::size_t up_count, const Coord& cs, const Coord& ct,
                        NodeId s, NodeId t, const WaypointFn& waypoint,
                        const OrderFn& order_for, PathT& out) {
  OBLV_CHECK(!chain.empty(), "bitonic chain cannot be empty");
  OBLV_EXPECTS(contracts::validate_bitonic_chain(mesh, chain, up_count),
               "Sections 3.2/4.1: chain regions must grow to the bridge and "
               "shrink after it, each containing its smaller neighbour");
  reset_path(s, t, out);
  Coord cur = cs;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Coord nxt = waypoint(chain[i], i);
    const Region& enclosing = (i <= up_count) ? chain[i] : chain[i - 1];
    const auto order = order_for(i);
    append_leg(mesh, enclosing, cur, nxt,
               std::span<const int>(order.data(), order.size()), out);
    cur = nxt;
  }
  const auto order = order_for(chain.size());
  append_leg(mesh, chain.back(), cur, ct,
             std::span<const int>(order.data(), order.size()), out);
}

inline void trivial_path_into(NodeId s, Path& out) {
  out.nodes.clear();
  out.nodes.push_back(s);
}
inline void trivial_path_into(NodeId s, SegmentPath& out) {
  out.segments.clear();
  out.source = s;
  out.dest = s;
}

inline void count_plan_cache(bool hit) {
  if (hit) {
    OBLV_COUNTER_ADD("routing.plan_cache.hits", 1);
  } else {
    OBLV_COUNTER_ADD("routing.plan_cache.misses", 1);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// AncestorRouter (Section 3)
// ---------------------------------------------------------------------------

AncestorRouter::AncestorRouter(const Mesh& mesh, Hierarchy hierarchy,
                               std::size_t plan_cache_capacity)
    : Router(mesh),
      decomp_(mesh, DecompositionConfig::section3()),
      hierarchy_(hierarchy),
      plan_cache_(plan_cache_capacity) {}

std::string AncestorRouter::name() const {
  return hierarchy_ == Hierarchy::kAccessTree ? "access-tree" : "hierarchical-2d";
}

RegularSubmesh AncestorRouter::bridge_at(const Coord& cs,
                                         const Coord& ct) const {
  return decomp_.deepest_common(cs, ct, hierarchy_ == Hierarchy::kAccessGraph);
}

RegularSubmesh AncestorRouter::bridge_for(NodeId s, NodeId t) const {
  return bridge_at(mesh_->coord(s), mesh_->coord(t));
}

void AncestorRouter::build_chain(const Coord& cs, const Coord& ct,
                                 std::vector<Region>& chain,
                                 std::size_t& up_count) const {
  const int k = decomp_.leaf_level();
  const RegularSubmesh bridge = bridge_at(cs, ct);
  OBLV_CHECK(bridge.level < k, "distinct nodes cannot share a leaf submesh");

  // Bitonic chain: type-1 ancestors of s at levels k-1 .. bridge.level+1,
  // the bridge, then type-1 ancestors of t back down.
  chain.clear();
  chain.reserve(static_cast<std::size_t>(2 * (k - bridge.level)) + 1);
  for (int level = k - 1; level > bridge.level; --level) {
    chain.push_back(decomp_.type1_at(cs, level).region);
  }
  up_count = chain.size();
  chain.push_back(bridge.region);
  for (int level = bridge.level + 1; level <= k - 1; ++level) {
    chain.push_back(decomp_.type1_at(ct, level).region);
  }
}

void AncestorRouter::resolve_plan(NodeId s, NodeId t,
                                  std::vector<Region>& chain,
                                  std::size_t& up_count,
                                  int& bridge_level) const {
  bridge_level = 0;
  const bool hit =
      plan_cache_.lookup(s, t, mesh_->dim(), chain, up_count, bridge_level);
  if (!hit) {
    build_chain(mesh_->coord(s), mesh_->coord(t), chain, up_count);
    plan_cache_.insert(s, t, mesh_->dim(), chain, up_count,
                       /*bridge_level=*/0);
  }
  count_plan_cache(hit);
}

template <typename PathT>
void AncestorRouter::route_into_impl(NodeId s, NodeId t, Rng& rng,
                                     RouteScratch& scratch, PathT& out) const {
  if (s == t) {
    trivial_path_into(s, out);
    return;
  }
  const Coord cs = mesh_->coord(s);
  const Coord ct = mesh_->coord(t);
  std::size_t up_count = 0;
  int bridge_level = 0;
  resolve_plan(s, t, scratch.chain, up_count, bridge_level);

  connect_chain_into<PathT>(
      *mesh_, scratch.chain, up_count, cs, ct, s, t,
      [&](const Region& region, std::size_t) {
        return region.random_coord(*mesh_, rng);
      },
      [&](std::size_t) { return rng.random_permutation(mesh_->dim()); }, out);
}

void AncestorRouter::route_into(NodeId s, NodeId t, Rng& rng,
                                RouteScratch& scratch, Path& out) const {
  expects_route_args(s, t);
  route_into_impl(s, t, rng, scratch, out);
  ensures_route_result(s, t, out);
  OBLV_ENSURES(hierarchy_ != Hierarchy::kAccessGraph || mesh_->dim() != 2 ||
                   contracts::validate_stretch_bound(*mesh_, out, 2),
               "Theorem 3.4: 2D access-graph stretch must be <= 64");
}

void AncestorRouter::route_segments_into(NodeId s, NodeId t, Rng& rng,
                                         RouteScratch& scratch,
                                         SegmentPath& out) const {
  expects_route_args(s, t);
  route_into_impl(s, t, rng, scratch, out);
  ensures_route_result(s, t, out);
  OBLV_ENSURES(hierarchy_ != Hierarchy::kAccessGraph || mesh_->dim() != 2 ||
                   contracts::validate_stretch_bound(*mesh_, out, 2),
               "Theorem 3.4: 2D access-graph stretch must be <= 64");
}

Path AncestorRouter::route(NodeId s, NodeId t, Rng& rng) const {
  RouteScratch scratch;
  Path p;
  route_into(s, t, rng, scratch, p);
  return p;
}

SegmentPath AncestorRouter::route_segments(NodeId s, NodeId t, Rng& rng) const {
  RouteScratch scratch;
  SegmentPath sp;
  route_segments_into(s, t, rng, scratch, sp);
  return sp;
}

// ---------------------------------------------------------------------------
// NdRouter (Section 4)
// ---------------------------------------------------------------------------

NdRouter::NdRouter(const Mesh& mesh, RandomnessMode mode,
                   BridgeHeightMode bridge_mode,
                   std::size_t plan_cache_capacity)
    : Router(mesh),
      decomp_(Decomposition::section4(mesh)),
      mode_(mode),
      bridge_mode_(bridge_mode),
      plan_cache_(plan_cache_capacity) {}

std::string NdRouter::name() const {
  return mode_ == RandomnessMode::kNaive ? "hierarchical-nd"
                                         : "hierarchical-nd-frugal";
}

std::pair<int, int> NdRouter::heights_for(NodeId s, NodeId t) const {
  const std::int64_t dist = mesh_->distance(s, t);
  OBLV_REQUIRE(dist > 0, "heights are defined for distinct nodes");
  const int k = decomp_.leaf_level();
  const int d = mesh_->dim();
  // Deepest level with side >= 2(d+1) dist has height h; the bridge sits
  // one height above (Section 4.1).
  const int h = ceil_log2(2 * static_cast<std::uint64_t>(d + 1) *
                          static_cast<std::uint64_t>(dist));
  const int lift = bridge_mode_ == BridgeHeightMode::kPrescribed ? 1 : 0;
  const int bridge_height = std::min(h + lift, k);
  const int m1_height =
      std::min(floor_log2(static_cast<std::uint64_t>(dist)), bridge_height - 1);
  return {std::max(m1_height, 0), bridge_height};
}

RegularSubmesh NdRouter::find_bridge(const Coord& cs, const RegularSubmesh& m1,
                                     const RegularSubmesh& m3,
                                     int bridge_level) const {
  // Lemma 4.1: at the prescribed level one of the shifted families
  // contains the bounding box of s and t (and, by grid alignment, the
  // whole of M1 and M3). Near the boundary of a non-torus mesh truncation
  // can defeat a family, so fall upward until a containing submesh is
  // found; the root always works.
  for (int level = bridge_level; level >= 0; --level) {
    for (int type = 1; type <= decomp_.num_types(level); ++type) {
      const auto sm = decomp_.submesh_at(cs, level, type);
      if (!sm.has_value()) continue;
      if (sm->region.contains_region(*mesh_, m1.region) &&
          sm->region.contains_region(*mesh_, m3.region)) {
        return *sm;
      }
    }
  }
  OBLV_UNREACHABLE("the root submesh contains everything");
}

RegularSubmesh NdRouter::bridge_for(NodeId s, NodeId t) const {
  const auto [m1_height, bridge_height] = heights_for(s, t);
  const int k = decomp_.leaf_level();
  const Coord cs = mesh_->coord(s);
  const RegularSubmesh m1 = decomp_.type1_at(cs, k - m1_height);
  const RegularSubmesh m3 = decomp_.type1_at(mesh_->coord(t), k - m1_height);
  return find_bridge(cs, m1, m3, k - bridge_height);
}

void NdRouter::build_chain(NodeId s, NodeId t, const Coord& cs,
                           const Coord& ct, std::vector<Region>& chain,
                           std::size_t& up_count, int& bridge_level) const {
  const int k = decomp_.leaf_level();
  const auto [m1_height, bridge_height] = heights_for(s, t);
  // One type1_at per endpoint: M1 and M3 anchor both the chain ends and
  // the bridge search (find_bridge reuses them instead of recomputing).
  const RegularSubmesh m1 = decomp_.type1_at(cs, k - m1_height);
  const RegularSubmesh m3 = decomp_.type1_at(ct, k - m1_height);
  const RegularSubmesh bridge = find_bridge(cs, m1, m3, k - bridge_height);

  // Chain: ascent over s at heights 1..m1_height, the bridge, descent over
  // t at heights m1_height..1.
  chain.clear();
  chain.reserve(static_cast<std::size_t>(2 * m1_height) + 1);
  for (int height = 1; height < m1_height; ++height) {
    chain.push_back(decomp_.type1_at(cs, k - height).region);
  }
  if (m1_height >= 1) chain.push_back(m1.region);
  up_count = chain.size();
  chain.push_back(bridge.region);
  if (m1_height >= 1) chain.push_back(m3.region);
  for (int height = m1_height - 1; height >= 1; --height) {
    chain.push_back(decomp_.type1_at(ct, k - height).region);
  }
  bridge_level = bridge.level;
}

void NdRouter::resolve_plan(NodeId s, NodeId t, std::vector<Region>& chain,
                            std::size_t& up_count, int& bridge_level) const {
  bridge_level = 0;
  const bool hit =
      plan_cache_.lookup(s, t, mesh_->dim(), chain, up_count, bridge_level);
  if (!hit) {
    build_chain(s, t, mesh_->coord(s), mesh_->coord(t), chain, up_count,
                bridge_level);
    plan_cache_.insert(s, t, mesh_->dim(), chain, up_count, bridge_level);
  }
  count_plan_cache(hit);
}

template <typename PathT>
void NdRouter::route_into_impl(NodeId s, NodeId t, Rng& rng,
                               RouteScratch& scratch, PathT& out) const {
  if (s == t) {
    trivial_path_into(s, out);
    return;
  }
  const Coord cs = mesh_->coord(s);
  const Coord ct = mesh_->coord(t);
  const int d = mesh_->dim();
  std::size_t up_count = 0;
  int bridge_level = 0;
  resolve_plan(s, t, scratch.chain, up_count, bridge_level);

  if (mode_ == RandomnessMode::kNaive) {
    connect_chain_into<PathT>(
        *mesh_, scratch.chain, up_count, cs, ct, s, t,
        [&](const Region& region, std::size_t) {
          return region.random_coord(*mesh_, rng);
        },
        [&](std::size_t) { return rng.random_permutation(d); }, out);
    return;
  }

  // Frugal mode (Section 5.3): one dimension order for the whole path and
  // two random coordinate vectors v1, v2 drawn once at the bridge scale;
  // smaller submeshes reuse their low-order bits, alternating between v1
  // and v2 so that the two endpoints of every subpath stay independent.
  const auto order = rng.random_permutation(d);
  const int bh = decomp_.height_of(bridge_level);
  Coord v1;
  Coord v2;
  v1.resize(static_cast<std::size_t>(d));
  v2.resize(static_cast<std::size_t>(d));
  for (std::size_t dd = 0; dd < static_cast<std::size_t>(d); ++dd) {
    v1[dd] = static_cast<std::int64_t>(rng.bits(bh));
    v2[dd] = static_cast<std::int64_t>(rng.bits(bh));
  }
  connect_chain_into<PathT>(
      *mesh_, scratch.chain, up_count, cs, ct, s, t,
      [&](const Region& region, std::size_t i) {
        const Coord& v = (i % 2 == 0) ? v1 : v2;
        Coord off;
        off.resize(static_cast<std::size_t>(d));
        for (std::size_t dd = 0; dd < static_cast<std::size_t>(d); ++dd) {
          // Extents are powers of two except for truncated bridges, where
          // the modulo introduces a mild bias that does not affect the
          // congestion guarantee (truncated submeshes border the mesh).
          off[dd] = v[dd] % region.extent()[dd];
        }
        return region.coord_at(*mesh_, off);
      },
      [&](std::size_t) { return order; }, out);
}

void NdRouter::route_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                          Path& out) const {
  expects_route_args(s, t);
  route_into_impl(s, t, rng, scratch, out);
  ensures_route_result(s, t, out);
  OBLV_ENSURES(bridge_mode_ != BridgeHeightMode::kPrescribed ||
                   contracts::validate_stretch_bound(*mesh_, out, mesh_->dim()),
               "Theorem 4.2: stretch must be <= 40 d (d+1)");
}

void NdRouter::route_segments_into(NodeId s, NodeId t, Rng& rng,
                                   RouteScratch& scratch,
                                   SegmentPath& out) const {
  expects_route_args(s, t);
  route_into_impl(s, t, rng, scratch, out);
  ensures_route_result(s, t, out);
  OBLV_ENSURES(bridge_mode_ != BridgeHeightMode::kPrescribed ||
                   contracts::validate_stretch_bound(*mesh_, out, mesh_->dim()),
               "Theorem 4.2: stretch must be <= 40 d (d+1)");
}

Path NdRouter::route(NodeId s, NodeId t, Rng& rng) const {
  RouteScratch scratch;
  Path p;
  route_into(s, t, rng, scratch, p);
  return p;
}

SegmentPath NdRouter::route_segments(NodeId s, NodeId t, Rng& rng) const {
  RouteScratch scratch;
  SegmentPath sp;
  route_segments_into(s, t, rng, scratch, sp);
  return sp;
}

}  // namespace oblivious
