#include "routing/hierarchical.hpp"

#include <algorithm>
#include <type_traits>
#include <vector>

#include "mesh/contracts.hpp"
#include "routing/one_bend.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"

namespace oblivious {

namespace {

// Emission dispatch for one leg of the chain: node list or segments.
inline void append_leg(const Mesh& mesh, const Region& region,
                       const Coord& from, const Coord& to,
                       std::span<const int> order, Path& out) {
  append_path_in_region(mesh, region, from, to, order, out);
}
inline void append_leg(const Mesh& mesh, const Region& region,
                       const Coord& from, const Coord& to,
                       std::span<const int> order, SegmentPath& out) {
  append_segments_in_region(mesh, region, from, to, order, out);
}

// Connects the waypoints of a bitonic chain. `chain` holds the regions of
// the bitonic access-graph path (ascent over s, bridge, descent over t) and
// `up_count` how many of them belong to the ascent; waypoint i is drawn in
// chain[i] and the subpath to it stays inside the *enclosing* region --
// chain[i] while ascending (it contains the previous, smaller region) and
// chain[i-1] while descending. The final leg runs to t inside the last
// chain region. Templated on the waypoint/order callbacks (no per-waypoint
// std::function allocations) and on the output representation.
template <typename PathT, typename WaypointFn, typename OrderFn>
PathT connect_chain(const Mesh& mesh, const std::vector<Region>& chain,
                    std::size_t up_count, const Coord& cs, const Coord& ct,
                    NodeId s, NodeId t, const WaypointFn& waypoint,
                    const OrderFn& order_for) {
  OBLV_CHECK(!chain.empty(), "bitonic chain cannot be empty");
  OBLV_EXPECTS(contracts::validate_bitonic_chain(mesh, chain, up_count),
               "Sections 3.2/4.1: chain regions must grow to the bridge and "
               "shrink after it, each containing its smaller neighbour");
  PathT path;
  if constexpr (std::is_same_v<PathT, Path>) {
    (void)t;
    path.nodes.push_back(s);
  } else {
    path.source = s;
    path.dest = t;
  }
  Coord cur = cs;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Coord nxt = waypoint(chain[i], i);
    const Region& enclosing = (i <= up_count) ? chain[i] : chain[i - 1];
    const auto order = order_for(i);
    append_leg(mesh, enclosing, cur, nxt,
               std::span<const int>(order.data(), order.size()), path);
    cur = nxt;
  }
  const auto order = order_for(chain.size());
  append_leg(mesh, chain.back(), cur, ct,
             std::span<const int>(order.data(), order.size()), path);
  return path;
}

template <typename PathT>
PathT trivial_path(NodeId s) {
  if constexpr (std::is_same_v<PathT, Path>) {
    return Path{{s}};
  } else {
    SegmentPath sp;
    sp.source = s;
    sp.dest = s;
    return sp;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// AncestorRouter (Section 3)
// ---------------------------------------------------------------------------

AncestorRouter::AncestorRouter(const Mesh& mesh, Hierarchy hierarchy)
    : Router(mesh),
      decomp_(mesh, DecompositionConfig::section3()),
      hierarchy_(hierarchy) {}

std::string AncestorRouter::name() const {
  return hierarchy_ == Hierarchy::kAccessTree ? "access-tree" : "hierarchical-2d";
}

RegularSubmesh AncestorRouter::bridge_for(NodeId s, NodeId t) const {
  return decomp_.deepest_common(mesh_->coord(s), mesh_->coord(t),
                                hierarchy_ == Hierarchy::kAccessGraph);
}

template <typename PathT>
PathT AncestorRouter::route_impl(NodeId s, NodeId t, Rng& rng) const {
  if (s == t) return trivial_path<PathT>(s);
  const Coord cs = mesh_->coord(s);
  const Coord ct = mesh_->coord(t);
  const int k = decomp_.leaf_level();
  const RegularSubmesh bridge =
      decomp_.deepest_common(cs, ct, hierarchy_ == Hierarchy::kAccessGraph);
  OBLV_CHECK(bridge.level < k, "distinct nodes cannot share a leaf submesh");

  // Bitonic chain: type-1 ancestors of s at levels k-1 .. bridge.level+1,
  // the bridge, then type-1 ancestors of t back down.
  std::vector<Region> chain;
  chain.reserve(static_cast<std::size_t>(2 * (k - bridge.level)) + 1);
  for (int level = k - 1; level > bridge.level; --level) {
    chain.push_back(decomp_.type1_at(cs, level).region);
  }
  const std::size_t up_count = chain.size();
  chain.push_back(bridge.region);
  for (int level = bridge.level + 1; level <= k - 1; ++level) {
    chain.push_back(decomp_.type1_at(ct, level).region);
  }

  return connect_chain<PathT>(
      *mesh_, chain, up_count, cs, ct, s, t,
      [&](const Region& region, std::size_t) {
        return region.random_coord(*mesh_, rng);
      },
      [&](std::size_t) { return rng.random_permutation(mesh_->dim()); });
}

Path AncestorRouter::route(NodeId s, NodeId t, Rng& rng) const {
  expects_route_args(s, t);
  Path p = route_impl<Path>(s, t, rng);
  ensures_route_result(s, t, p);
  OBLV_ENSURES(hierarchy_ != Hierarchy::kAccessGraph || mesh_->dim() != 2 ||
                   contracts::validate_stretch_bound(*mesh_, p, 2),
               "Theorem 3.4: 2D access-graph stretch must be <= 64");
  return p;
}

SegmentPath AncestorRouter::route_segments(NodeId s, NodeId t, Rng& rng) const {
  expects_route_args(s, t);
  SegmentPath sp = route_impl<SegmentPath>(s, t, rng);
  ensures_route_result(s, t, sp);
  OBLV_ENSURES(hierarchy_ != Hierarchy::kAccessGraph || mesh_->dim() != 2 ||
                   contracts::validate_stretch_bound(*mesh_, sp, 2),
               "Theorem 3.4: 2D access-graph stretch must be <= 64");
  return sp;
}

// ---------------------------------------------------------------------------
// NdRouter (Section 4)
// ---------------------------------------------------------------------------

NdRouter::NdRouter(const Mesh& mesh, RandomnessMode mode,
                   BridgeHeightMode bridge_mode)
    : Router(mesh),
      decomp_(Decomposition::section4(mesh)),
      mode_(mode),
      bridge_mode_(bridge_mode) {}

std::string NdRouter::name() const {
  return mode_ == RandomnessMode::kNaive ? "hierarchical-nd"
                                         : "hierarchical-nd-frugal";
}

std::pair<int, int> NdRouter::heights_for(NodeId s, NodeId t) const {
  const std::int64_t dist = mesh_->distance(s, t);
  OBLV_REQUIRE(dist > 0, "heights are defined for distinct nodes");
  const int k = decomp_.leaf_level();
  const int d = mesh_->dim();
  // Deepest level with side >= 2(d+1) dist has height h; the bridge sits
  // one height above (Section 4.1).
  const int h = ceil_log2(2 * static_cast<std::uint64_t>(d + 1) *
                          static_cast<std::uint64_t>(dist));
  const int lift = bridge_mode_ == BridgeHeightMode::kPrescribed ? 1 : 0;
  const int bridge_height = std::min(h + lift, k);
  const int m1_height =
      std::min(floor_log2(static_cast<std::uint64_t>(dist)), bridge_height - 1);
  return {std::max(m1_height, 0), bridge_height};
}

RegularSubmesh NdRouter::find_bridge(const Coord& cs, const Coord& ct,
                                     int m1_level, int bridge_level) const {
  const RegularSubmesh m1 = decomp_.type1_at(cs, m1_level);
  const RegularSubmesh m3 = decomp_.type1_at(ct, m1_level);
  // Lemma 4.1: at the prescribed level one of the shifted families
  // contains the bounding box of s and t (and, by grid alignment, the
  // whole of M1 and M3). Near the boundary of a non-torus mesh truncation
  // can defeat a family, so fall upward until a containing submesh is
  // found; the root always works.
  for (int level = bridge_level; level >= 0; --level) {
    for (int type = 1; type <= decomp_.num_types(level); ++type) {
      const auto sm = decomp_.submesh_at(cs, level, type);
      if (!sm.has_value()) continue;
      if (sm->region.contains_region(*mesh_, m1.region) &&
          sm->region.contains_region(*mesh_, m3.region)) {
        return *sm;
      }
    }
  }
  OBLV_UNREACHABLE("the root submesh contains everything");
}

RegularSubmesh NdRouter::bridge_for(NodeId s, NodeId t) const {
  const auto [m1_height, bridge_height] = heights_for(s, t);
  const int k = decomp_.leaf_level();
  return find_bridge(mesh_->coord(s), mesh_->coord(t), k - m1_height,
                     k - bridge_height);
}

template <typename PathT>
PathT NdRouter::route_impl(NodeId s, NodeId t, Rng& rng) const {
  if (s == t) return trivial_path<PathT>(s);
  const Coord cs = mesh_->coord(s);
  const Coord ct = mesh_->coord(t);
  const int k = decomp_.leaf_level();
  const int d = mesh_->dim();
  const auto [m1_height, bridge_height] = heights_for(s, t);

  const RegularSubmesh bridge =
      find_bridge(cs, ct, k - m1_height, k - bridge_height);

  // Chain: ascent over s at heights 1..m1_height, the bridge, descent over
  // t at heights m1_height..1.
  std::vector<Region> chain;
  chain.reserve(static_cast<std::size_t>(2 * m1_height) + 1);
  for (int height = 1; height <= m1_height; ++height) {
    chain.push_back(decomp_.type1_at(cs, k - height).region);
  }
  const std::size_t up_count = chain.size();
  chain.push_back(bridge.region);
  for (int height = m1_height; height >= 1; --height) {
    chain.push_back(decomp_.type1_at(ct, k - height).region);
  }

  if (mode_ == RandomnessMode::kNaive) {
    return connect_chain<PathT>(
        *mesh_, chain, up_count, cs, ct, s, t,
        [&](const Region& region, std::size_t) {
          return region.random_coord(*mesh_, rng);
        },
        [&](std::size_t) { return rng.random_permutation(d); });
  }

  // Frugal mode (Section 5.3): one dimension order for the whole path and
  // two random coordinate vectors v1, v2 drawn once at the bridge scale;
  // smaller submeshes reuse their low-order bits, alternating between v1
  // and v2 so that the two endpoints of every subpath stay independent.
  const auto order = rng.random_permutation(d);
  const int bh = decomp_.height_of(bridge.level);
  Coord v1;
  Coord v2;
  v1.resize(static_cast<std::size_t>(d));
  v2.resize(static_cast<std::size_t>(d));
  for (std::size_t dd = 0; dd < static_cast<std::size_t>(d); ++dd) {
    v1[dd] = static_cast<std::int64_t>(rng.bits(bh));
    v2[dd] = static_cast<std::int64_t>(rng.bits(bh));
  }
  return connect_chain<PathT>(
      *mesh_, chain, up_count, cs, ct, s, t,
      [&](const Region& region, std::size_t i) {
        const Coord& v = (i % 2 == 0) ? v1 : v2;
        Coord off;
        off.resize(static_cast<std::size_t>(d));
        for (std::size_t dd = 0; dd < static_cast<std::size_t>(d); ++dd) {
          // Extents are powers of two except for truncated bridges, where
          // the modulo introduces a mild bias that does not affect the
          // congestion guarantee (truncated submeshes border the mesh).
          off[dd] = v[dd] % region.extent()[dd];
        }
        return region.coord_at(*mesh_, off);
      },
      [&](std::size_t) { return order; });
}

Path NdRouter::route(NodeId s, NodeId t, Rng& rng) const {
  expects_route_args(s, t);
  Path p = route_impl<Path>(s, t, rng);
  ensures_route_result(s, t, p);
  OBLV_ENSURES(bridge_mode_ != BridgeHeightMode::kPrescribed ||
                   contracts::validate_stretch_bound(*mesh_, p, mesh_->dim()),
               "Theorem 4.2: stretch must be <= 40 d (d+1)");
  return p;
}

SegmentPath NdRouter::route_segments(NodeId s, NodeId t, Rng& rng) const {
  expects_route_args(s, t);
  SegmentPath sp = route_impl<SegmentPath>(s, t, rng);
  ensures_route_result(s, t, sp);
  OBLV_ENSURES(bridge_mode_ != BridgeHeightMode::kPrescribed ||
                   contracts::validate_stretch_bound(*mesh_, sp, mesh_->dim()),
               "Theorem 4.2: stretch must be <= 40 d (d+1)");
  return sp;
}

}  // namespace oblivious
