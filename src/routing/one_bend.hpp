// Dimension-by-dimension shortest subpaths (the "at most one-bend paths"
// of Section 3.3, step 7).
//
// A subpath between two intermediate nodes corrects the coordinates one
// dimension at a time, in a caller-supplied order; with a random order
// this is the randomized dimension-by-dimension routing the paper uses
// for every hop of the bitonic path.
#pragma once

#include <span>

#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "mesh/region.hpp"
#include "mesh/segment_path.hpp"

namespace oblivious {

// Appends to `path` the nodes of a dimension-order shortest path from the
// last node of `path` (which must be at coordinate `from`) to `to`,
// correcting dimensions in the order given. On the torus each dimension
// takes the shorter way around.
void append_dim_order_path(const Mesh& mesh, const Coord& from, const Coord& to,
                           std::span<const int> order, Path& path);

// Same, but the subpath is guaranteed to stay inside `region`: movement
// happens in the region's offset space, which matters on the torus where
// the globally shorter way around may leave the region. Both endpoints
// must lie in the region.
void append_path_in_region(const Mesh& mesh, const Region& region,
                           const Coord& from, const Coord& to,
                           std::span<const int> order, Path& path);

// Segment-emitting twins of the two appends above: one O(1) run per
// corrected dimension instead of one node per hop. Precondition: the
// segment path currently ends at `from` (the caller tracks the cursor).
void append_dim_order_segments(const Mesh& mesh, const Coord& from,
                               const Coord& to, std::span<const int> order,
                               SegmentPath& sp);
void append_segments_in_region(const Mesh& mesh, const Region& region,
                               const Coord& from, const Coord& to,
                               std::span<const int> order, SegmentPath& sp);

// Identity order {0, 1, ..., d-1}.
SmallVec<int, 8> identity_order(int dim);

}  // namespace oblivious
