#include "routing/bounded_valiant.hpp"

#include <algorithm>
#include <cmath>

#include "routing/one_bend.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace oblivious {

BoundedValiantRouter::BoundedValiantRouter(const Mesh& mesh, double margin)
    : Router(mesh), margin_(margin) {
  OBLV_REQUIRE(margin >= 0.0, "margin must be non-negative");
}

std::string BoundedValiantRouter::name() const {
  return margin_ == 0.0 ? "bounded-valiant"
                        : "bounded-valiant-m" +
                              std::to_string(static_cast<int>(margin_ * 10));
}

Region BoundedValiantRouter::box_for(NodeId s, NodeId t) const {
  const Coord cs = mesh_->coord(s);
  const Coord ct = mesh_->coord(t);
  const std::int64_t dist = mesh_->distance(cs, ct);
  const std::int64_t pad =
      static_cast<std::int64_t>(std::ceil(margin_ * static_cast<double>(dist)));
  Coord anchor;
  Coord extent;
  anchor.resize(cs.size());
  extent.resize(cs.size());
  for (int d = 0; d < mesh_->dim(); ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    const std::int64_t side = mesh_->side(d);
    // Span from cs along the (torus-aware) shortest displacement to ct.
    const std::int64_t delta = mesh_->displacement(cs[dd], ct[dd], d);
    std::int64_t lo = std::min<std::int64_t>(cs[dd], cs[dd] + delta) - pad;
    std::int64_t hi = std::max<std::int64_t>(cs[dd], cs[dd] + delta) + pad;
    if (mesh_->torus()) {
      const std::int64_t span = std::min(hi - lo + 1, side);
      anchor[dd] = pos_mod(lo, side);
      extent[dd] = span;
    } else {
      lo = std::max<std::int64_t>(lo, 0);
      hi = std::min<std::int64_t>(hi, side - 1);
      anchor[dd] = lo;
      extent[dd] = hi - lo + 1;
    }
  }
  return Region(std::move(anchor), std::move(extent));
}

void BoundedValiantRouter::route_into(NodeId s, NodeId t, Rng& rng,
                                      RouteScratch& /*scratch*/,
                                      Path& out) const {
  expects_route_args(s, t);
  out.nodes.clear();
  out.nodes.push_back(s);
  if (s == t) return;
  const Coord cs = mesh_->coord(s);
  const Coord ct = mesh_->coord(t);
  const Region box = box_for(s, t);
  const Coord mid = box.random_coord(*mesh_, rng);

  const auto order1 = rng.random_permutation(mesh_->dim());
  append_path_in_region(*mesh_, box, cs, mid,
                        std::span<const int>(order1.data(), order1.size()),
                        out);
  const auto order2 = rng.random_permutation(mesh_->dim());
  append_path_in_region(*mesh_, box, mid, ct,
                        std::span<const int>(order2.data(), order2.size()),
                        out);
  ensures_route_result(s, t, out);
}

void BoundedValiantRouter::route_segments_into(NodeId s, NodeId t, Rng& rng,
                                               RouteScratch& /*scratch*/,
                                               SegmentPath& out) const {
  expects_route_args(s, t);
  out.segments.clear();
  out.source = s;
  out.dest = t;
  if (s == t) return;
  const Coord cs = mesh_->coord(s);
  const Coord ct = mesh_->coord(t);
  const Region box = box_for(s, t);
  const Coord mid = box.random_coord(*mesh_, rng);

  const auto order1 = rng.random_permutation(mesh_->dim());
  append_segments_in_region(*mesh_, box, cs, mid,
                            std::span<const int>(order1.data(), order1.size()),
                            out);
  const auto order2 = rng.random_permutation(mesh_->dim());
  append_segments_in_region(*mesh_, box, mid, ct,
                            std::span<const int>(order2.data(), order2.size()),
                            out);
  ensures_route_result(s, t, out);
}

Path BoundedValiantRouter::route(NodeId s, NodeId t, Rng& rng) const {
  RouteScratch scratch;
  Path path;
  route_into(s, t, rng, scratch, path);
  return path;
}

SegmentPath BoundedValiantRouter::route_segments(NodeId s, NodeId t,
                                                 Rng& rng) const {
  RouteScratch scratch;
  SegmentPath sp;
  route_segments_into(s, t, rng, scratch, sp);
  return sp;
}

}  // namespace oblivious
