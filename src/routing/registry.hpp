// Name-based factory over every routing algorithm in the library, used by
// the benchmark harnesses, the examples, and the core facade.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "routing/router.hpp"

namespace oblivious {

enum class Algorithm {
  kEcube,                 // deterministic dimension-order (baseline)
  kRandomDimOrder,        // random-order one-bend (baseline)
  kStaircase,             // uniform random shortest path (baseline)
  kValiant,               // Valiant-Brebner random intermediate (baseline)
  kBoundedValiant,        // Valiant restricted to the bounding box (baseline)
  kAccessTree,            // Maggs et al. type-1 hierarchy (baseline)
  kHierarchical2d,        // the paper's Section 3 algorithm
  kHierarchicalNd,        // the paper's Section 4 algorithm
  kHierarchicalNdFrugal,  // Section 4 + Section 5.3 bit recycling
};

// All algorithms, in presentation order.
std::vector<Algorithm> all_algorithms();

// Algorithms applicable to the given mesh (the hierarchical ones need a
// square power-of-two mesh).
std::vector<Algorithm> algorithms_for(const Mesh& mesh);

std::string algorithm_name(Algorithm algorithm);
std::optional<Algorithm> algorithm_from_name(const std::string& name);

// Creates a router; throws std::invalid_argument when the mesh does not
// meet the algorithm's requirements.
std::unique_ptr<Router> make_router(Algorithm algorithm, const Mesh& mesh);

}  // namespace oblivious
