// Oblivious path-selection interface.
//
// A router is *oblivious*: the path for a packet depends only on its own
// source, destination, and private random bits -- never on other packets
// (Section 1). Implementations must therefore be callable independently
// per packet, which also makes them trivially parallel.
//
// Every router offers two equivalent emission modes: `route` returns the
// full node list, `route_segments` returns the compact segment form
// (source + maximal axis-aligned runs). The two draw randomness in the
// same order, so with equal rng state they describe the same path; the
// measurement pipeline consumes segments, the simulator consumes nodes.
//
// Each mode additionally has a zero-allocation twin -- `route_into` /
// `route_segments_into` -- that fills a caller-owned output (capacity
// retained across packets) and threads a RouteScratch for intermediate
// buffers. The twins are draw-for-draw identical to the allocating APIs:
// same rng consumption, byte-identical result (DESIGN.md section 8).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mesh/contracts.hpp"
#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "mesh/segment_path.hpp"
#include "rng/rng.hpp"
#include "routing/route_scratch.hpp"
#include "util/contracts.hpp"

namespace oblivious {

class Router {
 public:
  explicit Router(const Mesh& mesh) : mesh_(&mesh) {}
  virtual ~Router() = default;

  const Mesh& mesh() const { return *mesh_; }

  // Selects a path from s to t. The same (s, t, rng state) always yields
  // the same path; randomized routers draw all their randomness from `rng`
  // so that attaching a BitMeter measures their per-packet bit consumption.
  // \pre s and t are node ids of this router's mesh.
  // \post the returned path is a valid mesh path from s to t.
  virtual Path route(NodeId s, NodeId t, Rng& rng) const = 0;

  // Same path, compact form, without materializing the node list. The
  // default derives it from `route`; hot routers override it to emit
  // segments natively (O(#segments) instead of O(path length)).
  virtual SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const {
    return segments_from_path(*mesh_, route(s, t, rng));
  }

  // Zero-allocation twin of `route`: fills `out` in place (clearing its
  // previous content but keeping its heap capacity), using `scratch` for
  // intermediate state. Must consume the identical rng stream and produce
  // the identical path as `route`. The default delegates to the
  // allocating API; every in-tree router overrides it natively and turns
  // `route` into a thin wrapper over this.
  // \pre s and t are node ids of this router's mesh.
  virtual void route_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                          Path& out) const {
    (void)scratch;
    out = route(s, t, rng);
  }

  // Zero-allocation twin of `route_segments`; same contract as route_into.
  // \pre s and t are node ids of this router's mesh.
  virtual void route_segments_into(NodeId s, NodeId t, Rng& rng,
                                   RouteScratch& scratch,
                                   SegmentPath& out) const {
    (void)scratch;
    out = route_segments(s, t, rng);
  }

  virtual std::string name() const = 0;

  // True for kappa = 1 algorithms (Section 5: a deterministic algorithm
  // fixes the path given source and destination).
  virtual bool deterministic() const { return false; }

 protected:
  // Shared contracts for every route/route_segments implementation; all
  // compile out with the contract macros (default Release: zero cost).
  void expects_route_args(NodeId s, NodeId t) const {
    OBLV_EXPECTS(s >= 0 && s < mesh_->num_nodes(), "source off the mesh");
    OBLV_EXPECTS(t >= 0 && t < mesh_->num_nodes(), "destination off the mesh");
  }
  void ensures_route_result(NodeId s, NodeId t, const Path& p) const {
    OBLV_ENSURES(contracts::validate_path_endpoints(p, s, t),
                 "route must connect exactly (s, t)");
    OBLV_ENSURES(contracts::validate_path_in_mesh(*mesh_, p),
                 "route must follow mesh edges");
  }
  void ensures_route_result(NodeId s, NodeId t, const SegmentPath& sp) const {
    OBLV_ENSURES(contracts::validate_segment_path_endpoints(sp, s, t),
                 "route_segments must connect exactly (s, t)");
    OBLV_ENSURES(contracts::validate_segment_path(*mesh_, sp),
                 "route_segments must stay on the mesh");
  }

  const Mesh* mesh_;
};

}  // namespace oblivious
