// Oblivious path-selection interface.
//
// A router is *oblivious*: the path for a packet depends only on its own
// source, destination, and private random bits -- never on other packets
// (Section 1). Implementations must therefore be callable independently
// per packet, which also makes them trivially parallel.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "rng/rng.hpp"

namespace oblivious {

class Router {
 public:
  virtual ~Router() = default;

  // Selects a path from s to t. The same (s, t, rng state) always yields
  // the same path; randomized routers draw all their randomness from `rng`
  // so that attaching a BitMeter measures their per-packet bit consumption.
  virtual Path route(NodeId s, NodeId t, Rng& rng) const = 0;

  virtual std::string name() const = 0;

  // True for kappa = 1 algorithms (Section 5: a deterministic algorithm
  // fixes the path given source and destination).
  virtual bool deterministic() const { return false; }
};

}  // namespace oblivious
