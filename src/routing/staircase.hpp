// Uniformly random shortest ("staircase") paths.
//
// At every hop the next dimension is drawn with probability proportional
// to its remaining displacement, which makes the walk a uniform sample
// from ALL monotone shortest paths between s and t (not just the 2d
// one-bend ones). Stretch is exactly 1; congestion behaves like
// randomized dimension-order but with finer-grained spreading inside the
// bounding box. Used as a baseline and as the candidate generator of the
// offline comparator.
#pragma once

#include "routing/router.hpp"

namespace oblivious {

class RandomStaircaseRouter final : public Router {
 public:
  explicit RandomStaircaseRouter(const Mesh& mesh) : Router(mesh) {}

  Path route(NodeId s, NodeId t, Rng& rng) const override;
  SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const override;
  void route_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                  Path& out) const override;
  void route_segments_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                           SegmentPath& out) const override;
  std::string name() const override { return "staircase"; }
};

}  // namespace oblivious
