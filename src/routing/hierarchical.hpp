// The paper's oblivious path-selection algorithms.
//
// AncestorRouter (Section 3): walks the bitonic access-graph path from the
// leaf of s up the type-1 hierarchy to the deepest common ancestor (the
// bridge, possibly a shifted submesh), then down to the leaf of t. In each
// submesh along the way it picks a uniformly random node and joins
// consecutive picks with a random-dimension-order one-bend path that stays
// inside the enclosing submesh. Two hierarchies:
//   * AccessGraph -- type-1 + diagonally shifted submeshes (the paper's 2D
//     algorithm; stretch <= 64 in 2D, O(2^d) in the direct d-dim
//     generalization).
//   * AccessTree -- type-1 only (the Maggs et al. [9] baseline): same
//     congestion behaviour, but the common ancestor of nearby nodes that
//     straddle a partition boundary can be the root, so stretch is
//     unbounded.
//
// NdRouter (Section 4): the d-dimensional algorithm. The bridge is not the
// deepest common ancestor but a shifted submesh at the prescribed height
// h+1 with side >= 4(d+1) dist(s,t) (Lemma 4.1 guarantees one of the
// Theta(d) shifted families contains the bounding box of s and t), which
// keeps every submesh on the bitonic path at least twice as large as its
// predecessor (condition (iii), Appendix A.1) and yields stretch O(d^2)
// and congestion O(d^2 C* log n).
//
// NdRouter's Frugal mode implements the bit-recycling scheme of Section
// 5.3: one random dimension order per packet, and two random nodes drawn
// in the bridge-sized box whose coordinate bits are reused (alternating)
// for all smaller submeshes -- O(d log(D d)) random bits per packet
// instead of the naive O(d log^2(D d)).
#pragma once

#include "decomposition/decomposition.hpp"
#include "routing/router.hpp"

namespace oblivious {

class AncestorRouter final : public Router {
 public:
  enum class Hierarchy {
    kAccessTree,   // type-1 submeshes only (Maggs et al. baseline)
    kAccessGraph,  // type-1 + shifted bridge submeshes (the paper)
  };

  AncestorRouter(const Mesh& mesh, Hierarchy hierarchy);

  Path route(NodeId s, NodeId t, Rng& rng) const override;
  SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const override;
  std::string name() const override;

  const Decomposition& decomposition() const { return decomp_; }

  // The bridge submesh this router would use for the pair (exposed for
  // analysis and the Lemma 3.3 experiments).
  RegularSubmesh bridge_for(NodeId s, NodeId t) const;

 private:
  template <typename PathT>
  PathT route_impl(NodeId s, NodeId t, Rng& rng) const;

  Decomposition decomp_;
  Hierarchy hierarchy_;
};

class NdRouter final : public Router {
 public:
  enum class RandomnessMode {
    kNaive,   // fresh random bits for every hop
    kFrugal,  // Section 5.3 bit recycling
  };

  // Section 4.1 places the bridge one height ABOVE the deepest level whose
  // side is >= 2(d+1) dist ("due to technical reasons explained in the
  // appendix"). kMinimal uses that deepest level itself -- an ablation
  // measuring what the extra level costs/buys (see bench_a1_ablations).
  enum class BridgeHeightMode {
    kPrescribed,  // h + 1, as in the paper
    kMinimal,     // h
  };

  explicit NdRouter(const Mesh& mesh,
                    RandomnessMode mode = RandomnessMode::kNaive,
                    BridgeHeightMode bridge_mode = BridgeHeightMode::kPrescribed);

  Path route(NodeId s, NodeId t, Rng& rng) const override;
  SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const override;
  std::string name() const override;

  const Decomposition& decomposition() const { return decomp_; }

  // Heights used for the pair: (h', bridge height), Section 4.1 notation.
  // \pre s != t (heights are defined for distinct nodes).
  std::pair<int, int> heights_for(NodeId s, NodeId t) const;
  // The bridge submesh selected for the pair.
  RegularSubmesh bridge_for(NodeId s, NodeId t) const;

 private:
  RegularSubmesh find_bridge(const Coord& cs, const Coord& ct, int m1_level,
                             int bridge_level) const;
  template <typename PathT>
  PathT route_impl(NodeId s, NodeId t, Rng& rng) const;

  Decomposition decomp_;
  RandomnessMode mode_;
  BridgeHeightMode bridge_mode_;
};

}  // namespace oblivious
