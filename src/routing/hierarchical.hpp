// The paper's oblivious path-selection algorithms.
//
// AncestorRouter (Section 3): walks the bitonic access-graph path from the
// leaf of s up the type-1 hierarchy to the deepest common ancestor (the
// bridge, possibly a shifted submesh), then down to the leaf of t. In each
// submesh along the way it picks a uniformly random node and joins
// consecutive picks with a random-dimension-order one-bend path that stays
// inside the enclosing submesh. Two hierarchies:
//   * AccessGraph -- type-1 + diagonally shifted submeshes (the paper's 2D
//     algorithm; stretch <= 64 in 2D, O(2^d) in the direct d-dim
//     generalization).
//   * AccessTree -- type-1 only (the Maggs et al. [9] baseline): same
//     congestion behaviour, but the common ancestor of nearby nodes that
//     straddle a partition boundary can be the root, so stretch is
//     unbounded.
//
// NdRouter (Section 4): the d-dimensional algorithm. The bridge is not the
// deepest common ancestor but a shifted submesh at the prescribed height
// h+1 with side >= 4(d+1) dist(s,t) (Lemma 4.1 guarantees one of the
// Theta(d) shifted families contains the bounding box of s and t), which
// keeps every submesh on the bitonic path at least twice as large as its
// predecessor (condition (iii), Appendix A.1) and yields stretch O(d^2)
// and congestion O(d^2 C* log n).
//
// NdRouter's Frugal mode implements the bit-recycling scheme of Section
// 5.3: one random dimension order per packet, and two random nodes drawn
// in the bridge-sized box whose coordinate bits are reused (alternating)
// for all smaller submeshes -- O(d log(D d)) random bits per packet
// instead of the naive O(d log^2(D d)).
// Both hierarchical routers memoize their bitonic chains in a PlanCache:
// the chain depends only on the (s, t) pair, never on the packet's random
// bits, so a cache hit consumes the same draws and produces byte-identical
// paths (rng transparency; see DESIGN.md section 8).
#pragma once

#include "decomposition/decomposition.hpp"
#include "routing/plan_cache.hpp"
#include "routing/router.hpp"

namespace oblivious {

class AncestorRouter final : public Router {
 public:
  enum class Hierarchy {
    kAccessTree,   // type-1 submeshes only (Maggs et al. baseline)
    kAccessGraph,  // type-1 + shifted bridge submeshes (the paper)
  };

  // `plan_cache_capacity` bounds the per-router chain memo (entries, not
  // bytes); small capacities just evict more, they never change paths.
  AncestorRouter(const Mesh& mesh, Hierarchy hierarchy,
                 std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity);

  Path route(NodeId s, NodeId t, Rng& rng) const override;
  SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const override;
  void route_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                  Path& out) const override;
  void route_segments_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                           SegmentPath& out) const override;
  std::string name() const override;

  const Decomposition& decomposition() const { return decomp_; }

  // The bridge submesh this router would use for the pair (exposed for
  // analysis and the Lemma 3.3 experiments).
  RegularSubmesh bridge_for(NodeId s, NodeId t) const;

  // Plan-cache introspection (tests/bench). The cache is rng-transparent
  // memoization, so clearing it is logically const.
  const PlanCache& plan_cache() const { return plan_cache_; }
  void clear_plan_cache() const { plan_cache_.clear(); }

  // Resolves the memoized bitonic chain for the pair (plan-cache lookup,
  // build-and-insert on miss). The chain depends only on (s, t), never on
  // a packet's random bits, so the SoA batch engine resolves each unique
  // pair once per batch instead of once per packet. `bridge_level` is
  // always 0 here (only NdRouter's frugal mode consumes it).
  // \pre s != t, both node ids of this router's mesh.
  void resolve_plan(NodeId s, NodeId t, std::vector<Region>& chain,
                    std::size_t& up_count, int& bridge_level) const;

 private:
  RegularSubmesh bridge_at(const Coord& cs, const Coord& ct) const;
  void build_chain(const Coord& cs, const Coord& ct,
                   std::vector<Region>& chain, std::size_t& up_count) const;
  template <typename PathT>
  void route_into_impl(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                       PathT& out) const;

  Decomposition decomp_;
  Hierarchy hierarchy_;
  mutable PlanCache plan_cache_;
};

class NdRouter final : public Router {
 public:
  enum class RandomnessMode {
    kNaive,   // fresh random bits for every hop
    kFrugal,  // Section 5.3 bit recycling
  };

  // Section 4.1 places the bridge one height ABOVE the deepest level whose
  // side is >= 2(d+1) dist ("due to technical reasons explained in the
  // appendix"). kMinimal uses that deepest level itself -- an ablation
  // measuring what the extra level costs/buys (see bench_a1_ablations).
  enum class BridgeHeightMode {
    kPrescribed,  // h + 1, as in the paper
    kMinimal,     // h
  };

  explicit NdRouter(const Mesh& mesh,
                    RandomnessMode mode = RandomnessMode::kNaive,
                    BridgeHeightMode bridge_mode = BridgeHeightMode::kPrescribed,
                    std::size_t plan_cache_capacity = PlanCache::kDefaultCapacity);

  Path route(NodeId s, NodeId t, Rng& rng) const override;
  SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const override;
  void route_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                  Path& out) const override;
  void route_segments_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                           SegmentPath& out) const override;
  std::string name() const override;

  const Decomposition& decomposition() const { return decomp_; }

  // Heights used for the pair: (h', bridge height), Section 4.1 notation.
  // \pre s != t (heights are defined for distinct nodes).
  std::pair<int, int> heights_for(NodeId s, NodeId t) const;
  // The bridge submesh selected for the pair.
  RegularSubmesh bridge_for(NodeId s, NodeId t) const;

  // Plan-cache introspection (tests/bench); see AncestorRouter.
  const PlanCache& plan_cache() const { return plan_cache_; }
  void clear_plan_cache() const { plan_cache_.clear(); }

  // Memoized chain resolution for the pair; see AncestorRouter. The
  // frugal draw widths derive from `bridge_level` via
  // decomposition().height_of.
  // \pre s != t, both node ids of this router's mesh.
  void resolve_plan(NodeId s, NodeId t, std::vector<Region>& chain,
                    std::size_t& up_count, int& bridge_level) const;

  RandomnessMode randomness_mode() const { return mode_; }

 private:
  // `m1` / `m3` are the already-computed type-1 ancestors of s and t at
  // the m1 level; passing them in keeps each packet to one type1_at lookup
  // per endpoint (they are reused for the chain as well).
  RegularSubmesh find_bridge(const Coord& cs, const RegularSubmesh& m1,
                             const RegularSubmesh& m3, int bridge_level) const;
  void build_chain(NodeId s, NodeId t, const Coord& cs, const Coord& ct,
                   std::vector<Region>& chain, std::size_t& up_count,
                   int& bridge_level) const;
  template <typename PathT>
  void route_into_impl(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                       PathT& out) const;

  Decomposition decomp_;
  RandomnessMode mode_;
  BridgeHeightMode bridge_mode_;
  mutable PlanCache plan_cache_;
};

}  // namespace oblivious
