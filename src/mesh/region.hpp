// An axis-aligned submesh, possibly wrapping around on the torus.
//
// Regular submeshes of the hierarchical decomposition are represented as an
// anchor (the node with the smallest coordinate, canonicalized into the
// mesh) plus a per-dimension extent. On the torus a region may wrap; on the
// plain mesh anchors are always in range so a region is an ordinary box.
#pragma once

#include <cstdint>
#include <string>

#include "mesh/types.hpp"

namespace oblivious {

class Mesh;
class Rng;

class Region {
 public:
  Region() = default;
  Region(Coord anchor, Coord extent);

  // Full mesh as a region.
  static Region whole(const Mesh& mesh);

  // Box [lo, hi] inclusive (no wrapping).
  static Region box(Coord lo, Coord hi);

  const Coord& anchor() const { return anchor_; }
  const Coord& extent() const { return extent_; }
  int dim() const { return static_cast<int>(anchor_.size()); }
  std::int64_t extent_at(int d) const { return extent_[static_cast<std::size_t>(d)]; }
  std::int64_t anchor_at(int d) const { return anchor_[static_cast<std::size_t>(d)]; }

  // Number of nodes in the region.
  std::int64_t volume() const;

  // Largest and smallest side length.
  std::int64_t max_extent() const;
  std::int64_t min_extent() const;

  // True when the coordinate lies inside the region (wrap-aware).
  bool contains(const Mesh& mesh, const Coord& c) const;
  bool contains_node(const Mesh& mesh, NodeId id) const;

  // True when `other` is completely inside this region.
  bool contains_region(const Mesh& mesh, const Region& other) const;

  // Per-dimension offset of `c` from the anchor, in [0, extent) (wrap-aware).
  // Precondition: contains(mesh, c).
  Coord offset_of(const Mesh& mesh, const Coord& c) const;

  // Coordinate at the given offset from the anchor (wrap-aware).
  Coord coord_at(const Mesh& mesh, const Coord& offset) const;

  // Uniformly random node of the region. Charges ceil(log2(extent)) bits
  // per dimension through the rng's meter.
  Coord random_coord(const Mesh& mesh, Rng& rng) const;
  NodeId random_node(const Mesh& mesh, Rng& rng) const;

  bool operator==(const Region& other) const {
    return anchor_ == other.anchor_ && extent_ == other.extent_;
  }
  bool operator!=(const Region& other) const { return !(*this == other); }

  std::string describe() const;

 private:
  Coord anchor_;
  Coord extent_;
};

}  // namespace oblivious
