#include "mesh/contracts.hpp"

namespace oblivious::contracts {

double stretch_bound(int dim) {
  if (dim == 2) return 64.0;  // Theorem 3.4
  return 40.0 * dim * (dim + 1);  // Theorem 4.2, explicit proof constants
}

bool validate_path_in_mesh(const Mesh& mesh, const Path& path) {
  return is_valid_path(mesh, path);
}

bool validate_path_endpoints(const Path& path, NodeId s, NodeId t) {
  return !path.nodes.empty() && path.source() == s && path.destination() == t;
}

bool validate_segment_path(const Mesh& mesh, const SegmentPath& sp) {
  return is_valid_segment_path(mesh, sp);
}

bool validate_segment_path_endpoints(const SegmentPath& sp, NodeId s,
                                     NodeId t) {
  return !sp.empty() && sp.source == s && sp.dest == t;
}

bool validate_segment_path_lossless(const Mesh& mesh, const SegmentPath& sp) {
  if (!is_valid_segment_path(mesh, sp)) return false;
  const Path replayed = path_from_segments(mesh, sp);
  if (!is_valid_path(mesh, replayed)) return false;
  return segments_from_path(mesh, replayed) == sp;
}

bool validate_bitonic_chain(const Mesh& mesh, const std::vector<Region>& chain,
                            std::size_t up_count) {
  if (chain.empty() || up_count >= chain.size()) return false;
  for (std::size_t i = 1; i <= up_count; ++i) {
    if (!chain[i].contains_region(mesh, chain[i - 1])) return false;
  }
  for (std::size_t i = up_count + 1; i < chain.size(); ++i) {
    if (!chain[i - 1].contains_region(mesh, chain[i])) return false;
  }
  return true;
}

bool validate_stretch_bound(const Mesh& mesh, const Path& path, int dim) {
  if (path.nodes.empty()) return false;
  return path_stretch(mesh, path) <= stretch_bound(dim);
}

bool validate_stretch_bound(const Mesh& mesh, const SegmentPath& sp, int dim) {
  if (sp.empty()) return false;
  return segment_path_stretch(mesh, sp) <= stretch_bound(dim);
}

}  // namespace oblivious::contracts
