#include "mesh/region.hpp"

#include <sstream>

#include "mesh/mesh.hpp"
#include "rng/rng.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace oblivious {

Region::Region(Coord anchor, Coord extent)
    : anchor_(std::move(anchor)), extent_(std::move(extent)) {
  OBLV_REQUIRE(anchor_.size() == extent_.size(), "anchor/extent dimension mismatch");
  for (std::size_t d = 0; d < extent_.size(); ++d) {
    OBLV_REQUIRE(extent_[d] >= 1, "region extent must be >= 1");
  }
}

Region Region::whole(const Mesh& mesh) {
  Coord anchor;
  Coord extent;
  anchor.resize(static_cast<std::size_t>(mesh.dim()), 0);
  extent.resize(static_cast<std::size_t>(mesh.dim()));
  for (int d = 0; d < mesh.dim(); ++d) {
    extent[static_cast<std::size_t>(d)] = mesh.side(d);
  }
  return Region(std::move(anchor), std::move(extent));
}

Region Region::box(Coord lo, Coord hi) {
  OBLV_REQUIRE(lo.size() == hi.size(), "box corner dimension mismatch");
  Coord extent;
  extent.resize(lo.size());
  for (std::size_t d = 0; d < lo.size(); ++d) {
    OBLV_REQUIRE(hi[d] >= lo[d], "box needs hi >= lo");
    extent[d] = hi[d] - lo[d] + 1;
  }
  return Region(std::move(lo), std::move(extent));
}

std::int64_t Region::volume() const {
  std::int64_t v = 1;
  for (std::size_t d = 0; d < extent_.size(); ++d) v *= extent_[d];
  return v;
}

std::int64_t Region::max_extent() const {
  std::int64_t m = 0;
  for (std::size_t d = 0; d < extent_.size(); ++d) m = std::max(m, extent_[d]);
  return m;
}

std::int64_t Region::min_extent() const {
  std::int64_t m = extent_.empty() ? 0 : extent_[0];
  for (std::size_t d = 0; d < extent_.size(); ++d) m = std::min(m, extent_[d]);
  return m;
}

bool Region::contains(const Mesh& mesh, const Coord& c) const {
  OBLV_REQUIRE(c.size() == anchor_.size(), "coordinate dimension mismatch");
  for (int d = 0; d < dim(); ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    if (mesh.torus()) {
      if (pos_mod(c[dd] - anchor_[dd], mesh.side(d)) >= extent_[dd]) return false;
    } else {
      if (c[dd] < anchor_[dd] || c[dd] >= anchor_[dd] + extent_[dd]) return false;
    }
  }
  return true;
}

bool Region::contains_node(const Mesh& mesh, NodeId id) const {
  return contains(mesh, mesh.coord(id));
}

bool Region::contains_region(const Mesh& mesh, const Region& other) const {
  OBLV_REQUIRE(other.dim() == dim(), "region dimension mismatch");
  for (int d = 0; d < dim(); ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    if (mesh.torus()) {
      if (other.extent_[dd] > extent_[dd]) return false;
      const std::int64_t off = pos_mod(other.anchor_[dd] - anchor_[dd], mesh.side(d));
      if (off + other.extent_[dd] > extent_[dd]) return false;
    } else {
      if (other.anchor_[dd] < anchor_[dd] ||
          other.anchor_[dd] + other.extent_[dd] > anchor_[dd] + extent_[dd]) {
        return false;
      }
    }
  }
  return true;
}

Coord Region::offset_of(const Mesh& mesh, const Coord& c) const {
  OBLV_REQUIRE(contains(mesh, c), "coordinate not inside region");
  Coord off;
  off.resize(anchor_.size());
  for (int d = 0; d < dim(); ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    off[dd] = mesh.torus() ? pos_mod(c[dd] - anchor_[dd], mesh.side(d))
                           : c[dd] - anchor_[dd];
  }
  return off;
}

Coord Region::coord_at(const Mesh& mesh, const Coord& offset) const {
  OBLV_REQUIRE(offset.size() == anchor_.size(), "offset dimension mismatch");
  Coord c;
  c.resize(anchor_.size());
  for (int d = 0; d < dim(); ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    OBLV_REQUIRE(offset[dd] >= 0 && offset[dd] < extent_[dd], "offset out of range");
    c[dd] = anchor_[dd] + offset[dd];
    if (mesh.torus()) c[dd] = pos_mod(c[dd], mesh.side(d));
  }
  OBLV_CHECK(mesh.contains(c), "region node escapes the mesh");
  return c;
}

Coord Region::random_coord(const Mesh& mesh, Rng& rng) const {
  Coord off;
  off.resize(anchor_.size());
  for (std::size_t d = 0; d < extent_.size(); ++d) {
    off[d] = static_cast<std::int64_t>(
        rng.uniform_below(static_cast<std::uint64_t>(extent_[d])));
  }
  return coord_at(mesh, off);
}

NodeId Region::random_node(const Mesh& mesh, Rng& rng) const {
  return mesh.node_id(random_coord(mesh, rng));
}

std::string Region::describe() const {
  std::ostringstream os;
  os << "[";
  for (int d = 0; d < dim(); ++d) {
    if (d > 0) os << ",";
    os << anchor_[static_cast<std::size_t>(d)] << "+"
       << extent_[static_cast<std::size_t>(d)];
  }
  os << "]";
  return os.str();
}

}  // namespace oblivious
