// Paper-invariant validators, used as the predicates of OBLV_EXPECTS /
// OBLV_ENSURES at the API boundaries of mesh/, decomposition/, routing/,
// analysis/ and simulator/.
//
// Each validator encodes one checkable guarantee of the paper (Busch,
// Magdon-Ismail, Xi; IPDPS 2005):
//   validate_path_in_mesh          - Section 2 path model: non-empty node
//                                    sequence, every hop a mesh edge
//   validate_path_endpoints        - oblivious routing contract: the path
//                                    connects exactly (s, t)
//   validate_segment_path          - same, for the compact segment form
//   validate_segment_path_lossless - SegmentPath <-> Path round-trip is
//                                    the identity (PR 1 pipeline invariant)
//   validate_bitonic_chain         - Section 3.2/4.1 access-graph paths:
//                                    regions grow to the bridge, then
//                                    shrink, each leg's enclosing region
//                                    containing its smaller neighbour
//   validate_stretch_bound         - Theorem 3.4 (stretch <= 64 in 2D) and
//                                    Theorem 4.2 (<= 40 d (d+1) in d dims,
//                                    the explicit constants of the proof)
//
// All validators are plain bool functions: callable from tests directly
// and free when the enclosing contract macro is compiled out.
#pragma once

#include <cstddef>
#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "mesh/region.hpp"
#include "mesh/segment_path.hpp"

namespace oblivious::contracts {

// Theorem 3.4 / 4.2 stretch ceiling for the paper's routers on a
// d-dimensional mesh: 64 for d == 2, else 40 d (d+1).
double stretch_bound(int dim);

// Section 2: non-empty, and every consecutive pair adjacent in the mesh.
bool validate_path_in_mesh(const Mesh& mesh, const Path& path);

// The path starts at s and ends at t.
bool validate_path_endpoints(const Path& path, NodeId s, NodeId t);

// Segment-form twin of validate_path_in_mesh: endpoints on the mesh and
// every run stays on it (wrap-aware).
bool validate_segment_path(const Mesh& mesh, const SegmentPath& sp);

// The segment path starts at s and ends at t.
bool validate_segment_path_endpoints(const SegmentPath& sp, NodeId s,
                                     NodeId t);

// Lossless-conversion invariant: replaying the runs lands on sp.dest and
// re-deriving segments from the replayed node list reproduces sp exactly.
bool validate_segment_path_lossless(const Mesh& mesh, const SegmentPath& sp);

// Bitonic access-graph chain (Sections 3.2, 4.1): chain[0..up_count] is
// the ascent (each region contains its predecessor, the last being the
// bridge), chain[up_count..] the descent (each region contains its
// successor). This is exactly the containment connect_chain needs for
// every leg to stay inside its enclosing submesh.
bool validate_bitonic_chain(const Mesh& mesh, const std::vector<Region>& chain,
                            std::size_t up_count);

// stretch(p) <= stretch_bound(dim). Zero-length paths pass (stretch 1).
bool validate_stretch_bound(const Mesh& mesh, const Path& path, int dim);
bool validate_stretch_bound(const Mesh& mesh, const SegmentPath& sp, int dim);

}  // namespace oblivious::contracts
