#include "mesh/segment_path.hpp"

#include <cstdlib>

#include "mesh/mesh.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace oblivious {

SegmentPath segments_from_path(const Mesh& mesh, const Path& path) {
  OBLV_REQUIRE(!path.nodes.empty(), "cannot convert an empty path");
  SegmentPath sp;
  sp.source = path.nodes.front();
  sp.dest = path.nodes.back();
  if (path.nodes.size() < 2) return sp;
  Coord cur = mesh.coord(sp.source);
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    const std::int64_t delta = path.nodes[i + 1] - path.nodes[i];
    bool matched = false;
    for (int d = 0; d < mesh.dim() && !matched; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      const std::int64_t side = mesh.side(d);
      const std::int64_t s = mesh.node_stride(d);
      if (delta == s && cur[dd] + 1 < side) {
        sp.append(d, 1);
        cur[dd] += 1;
        matched = true;
      } else if (delta == -s && cur[dd] - 1 >= 0) {
        sp.append(d, -1);
        cur[dd] -= 1;
        matched = true;
      } else if (mesh.torus() && side > 2 && cur[dd] == side - 1 &&
                 delta == -s * (side - 1)) {
        sp.append(d, 1);  // wrap: side-1 -> 0 is a +1 step
        cur[dd] = 0;
        matched = true;
      } else if (mesh.torus() && side > 2 && cur[dd] == 0 &&
                 delta == s * (side - 1)) {
        sp.append(d, -1);  // wrap: 0 -> side-1 is a -1 step
        cur[dd] = side - 1;
        matched = true;
      }
    }
    OBLV_REQUIRE(matched, "path hop is not a mesh edge");
  }
  return sp;
}

Path path_from_segments(const Mesh& mesh, const SegmentPath& sp) {
  OBLV_REQUIRE(!sp.empty(), "cannot convert an empty segment path");
  Path path;
  path.nodes.reserve(static_cast<std::size_t>(sp.length()) + 1);
  path.nodes.push_back(sp.source);
  Coord cur = mesh.coord(sp.source);
  for (const Segment& seg : sp.segments) {
    const int d = seg.dim;
    const std::size_t dd = static_cast<std::size_t>(d);
    const int dir = seg.run > 0 ? 1 : -1;
    const std::int64_t steps = std::abs(seg.run);
    for (std::int64_t i = 0; i < steps; ++i) {
      cur[dd] += dir;
      if (mesh.torus()) cur[dd] = pos_mod(cur[dd], mesh.side(d));
      OBLV_REQUIRE(cur[dd] >= 0 && cur[dd] < mesh.side(d),
                   "segment run leaves the mesh");
      path.nodes.push_back(mesh.node_id(cur));
    }
  }
  OBLV_REQUIRE(path.nodes.back() == sp.dest,
               "segment path destination mismatch");
  return path;
}

bool is_valid_segment_path(const Mesh& mesh, const SegmentPath& sp) {
  if (sp.empty()) return false;
  if (sp.source < 0 || sp.source >= mesh.num_nodes()) return false;
  if (sp.dest < 0 || sp.dest >= mesh.num_nodes()) return false;
  Coord cur = mesh.coord(sp.source);
  for (const Segment& seg : sp.segments) {
    if (seg.dim < 0 || seg.dim >= mesh.dim() || seg.run == 0) return false;
    const std::size_t dd = static_cast<std::size_t>(seg.dim);
    const std::int64_t side = mesh.side(seg.dim);
    if (mesh.torus() && side > 2) {
      cur[dd] = pos_mod(cur[dd] + seg.run, side);
    } else {
      // Movement is monotone within a run, so the endpoint bounds every
      // intermediate position. Side-<=2 torus dims wrap in unit steps.
      if (mesh.torus() && side == 2) {
        cur[dd] = pos_mod(cur[dd] + seg.run, side);
      } else {
        cur[dd] += seg.run;
        if (cur[dd] < 0 || cur[dd] >= side) return false;
      }
    }
  }
  return mesh.node_id(cur) == sp.dest;
}

double segment_path_stretch(const Mesh& mesh, const SegmentPath& sp) {
  OBLV_REQUIRE(!sp.empty(), "stretch of an empty segment path");
  const std::int64_t dist = mesh.distance(sp.source, sp.dest);
  if (dist == 0) return 1.0;
  return static_cast<double>(sp.length()) / static_cast<double>(dist);
}

}  // namespace oblivious
