// Packet paths and the path-quality primitives of Section 2.
//
// A path is the full node sequence from source to destination. The length
// |p| is its edge count, and stretch(p) = |p| / dist(s, t).
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/types.hpp"

namespace oblivious {

class Mesh;

struct Path {
  std::vector<NodeId> nodes;

  NodeId source() const { return nodes.front(); }
  NodeId destination() const { return nodes.back(); }
  // Number of edges.
  std::int64_t length() const {
    return static_cast<std::int64_t>(nodes.size()) - 1;
  }
  bool empty() const { return nodes.empty(); }
};

// True when every consecutive pair of nodes is adjacent in the mesh and the
// path is non-empty.
bool is_valid_path(const Mesh& mesh, const Path& path);

// True when no node repeats.
bool is_simple_path(const Path& path);

// stretch(p) = |p| / dist(s,t); returns 1.0 for zero-length s == t paths.
// \pre the path is non-empty.
double path_stretch(const Mesh& mesh, const Path& path);

// Loop erasure: removes all cycles, preserving source and destination and
// keeping a subsequence of the original nodes. The paper notes cycles can
// always be removed without increasing congestion (Section 3.3).
Path remove_cycles(Path path);

}  // namespace oblivious
