#include "mesh/path.hpp"

#include <unordered_map>
#include <unordered_set>

#include "mesh/mesh.hpp"
#include "util/check.hpp"

namespace oblivious {

bool is_valid_path(const Mesh& mesh, const Path& path) {
  if (path.nodes.empty()) return false;
  for (const NodeId u : path.nodes) {
    if (u < 0 || u >= mesh.num_nodes()) return false;
  }
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    if (!mesh.adjacent(path.nodes[i], path.nodes[i + 1])) return false;
  }
  return true;
}

bool is_simple_path(const Path& path) {
  std::unordered_set<NodeId> seen;
  seen.reserve(path.nodes.size());
  for (const NodeId u : path.nodes) {
    if (!seen.insert(u).second) return false;
  }
  return true;
}

double path_stretch(const Mesh& mesh, const Path& path) {
  OBLV_REQUIRE(!path.nodes.empty(), "stretch of an empty path");
  const std::int64_t dist = mesh.distance(path.source(), path.destination());
  if (dist == 0) return 1.0;
  return static_cast<double>(path.length()) / static_cast<double>(dist);
}

Path remove_cycles(Path path) {
  if (path.nodes.size() <= 2) return path;
  std::vector<NodeId> out;
  out.reserve(path.nodes.size());
  std::unordered_map<NodeId, std::size_t> position;
  position.reserve(path.nodes.size());
  for (const NodeId u : path.nodes) {
    const auto it = position.find(u);
    if (it != position.end()) {
      // Already visited at out[it->second]: erase the loop in between.
      for (std::size_t i = it->second + 1; i < out.size(); ++i) {
        position.erase(out[i]);
      }
      out.resize(it->second + 1);
    } else {
      position.emplace(u, out.size());
      out.push_back(u);
    }
  }
  path.nodes = std::move(out);
  return path;
}

}  // namespace oblivious
