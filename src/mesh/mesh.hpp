// The d-dimensional mesh/torus network of Section 2 of the paper.
//
// The mesh M is a d-dimensional grid with side length m_i in dimension i
// and a link between each pair of neighboring nodes. `Mesh` provides the
// coordinate arithmetic every other module builds on: node <-> coordinate
// conversion, adjacency, L1 distances (wrap-aware on the torus), a stable
// undirected edge numbering, and boundary-edge counts out(M') for
// submeshes (used by the boundary-congestion lower bound).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/types.hpp"

namespace oblivious {

class Region;  // defined in mesh/region.hpp

class Mesh {
 public:
  // `sides[i]` is the number of nodes along dimension i (all >= 1).
  // When `torus` is true every dimension wraps around.
  explicit Mesh(std::vector<std::int64_t> sides, bool torus = false);

  // Convenience factory: d dimensions of equal side length.
  static Mesh cube(int dim, std::int64_t side, bool torus = false);

  int dim() const { return static_cast<int>(sides_.size()); }
  std::int64_t side(int d) const { return sides_[static_cast<std::size_t>(d)]; }
  const std::vector<std::int64_t>& sides() const { return sides_; }
  bool torus() const { return torus_; }
  bool is_square() const;       // all sides equal
  bool sides_power_of_two() const;

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return num_edges_; }

  // --- node <-> coordinate -------------------------------------------------
  NodeId node_id(const Coord& c) const;
  Coord coord(NodeId id) const;
  bool contains(const Coord& c) const;

  // Canonicalizes a coordinate onto the torus (per-dimension mod side).
  // Precondition: torus() is true, or the coordinate is already in range.
  Coord wrap(Coord c) const;

  // --- adjacency -----------------------------------------------------------
  // Neighbor of `u` one step along dimension `d` in direction `dir` (+1/-1).
  // Returns kInvalidNode when stepping off a non-torus boundary.
  NodeId step(NodeId u, int d, int dir) const;
  std::vector<NodeId> neighbors(NodeId u) const;
  bool adjacent(NodeId a, NodeId b) const;

  // --- distance ------------------------------------------------------------
  // L1 (shortest-path) distance; uses the shorter way around on the torus.
  std::int64_t distance(const Coord& a, const Coord& b) const;
  std::int64_t distance(NodeId a, NodeId b) const;
  // Per-dimension signed displacement of a shortest route from a to b
  // (magnitude <= side/2 on the torus).
  std::int64_t displacement(std::int64_t from, std::int64_t to, int d) const;
  // Maximum possible distance between any two nodes.
  std::int64_t diameter() const;

  // Node-id stride of a +1 step along dimension d.
  std::int64_t node_stride(int d) const {
    return node_strides_[static_cast<std::size_t>(d)];
  }

  // --- edges ---------------------------------------------------------------
  // First edge id of dimension d (edges are numbered dimension-major).
  EdgeId edge_dim_offset(int d) const {
    return edge_offsets_[static_cast<std::size_t>(d)];
  }
  // Edges per line along dimension d: side-1, or side when the dimension
  // wraps (torus with side > 2).
  std::int64_t edge_dim_radix(int d) const {
    return edge_dim_radix_[static_cast<std::size_t>(d)];
  }
  // Undirected edge between u and its +1 neighbor along dimension d.
  // On the torus this includes the wrap edge (coordinate side-1 -> 0).
  EdgeId edge_id(const Coord& u, int d) const;
  // Edge between two adjacent nodes (precondition: adjacent(a,b)).
  EdgeId edge_between(NodeId a, NodeId b) const;
  // Inverse of the numbering: endpoints (u, v) with v = u + e_d.
  std::pair<NodeId, NodeId> edge_endpoints(EdgeId e) const;
  // Dimension an edge runs along.
  int edge_dim(EdgeId e) const;

  // --- submesh boundaries ----------------------------------------------------
  // Number of edges crossing the boundary of the region: out(M') in the
  // paper's notation (Section 2).
  std::int64_t boundary_edge_count(const Region& r) const;

  std::string describe() const;

 private:
  std::vector<std::int64_t> sides_;
  bool torus_;
  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  // Mixed-radix strides for node_id computation: strides_[d] = prod of
  // sides_[d+1..].
  std::vector<std::int64_t> node_strides_;
  // Edge numbering: edges of dimension d occupy
  // [edge_offsets_[d], edge_offsets_[d+1]). Within a dimension, edges are
  // indexed by the coordinate of their lower endpoint in a mixed-radix
  // space where dimension d has radix side-1 (mesh) or side (torus).
  std::vector<EdgeId> edge_offsets_;
  std::vector<std::int64_t> edge_dim_radix_;  // side-1 or side, per dim
};

}  // namespace oblivious
