// Compact segment representation of mesh paths.
//
// The paper's routers produce bitonic one-bend chains: a handful of
// maximal axis-aligned straight runs per packet. SegmentPath stores
// exactly that -- the source node plus one {dimension, signed run}
// entry per maximal run -- instead of the full node sequence, so a
// path of length L on a d-dimensional mesh costs O(#segments) ~ O(d)
// space for the one-bend routers rather than O(L). Conversion to and
// from the node-list `Path` is lossless; the measurement pipeline
// (EdgeLoadMap::add_segments, route_all_segments) consumes segments
// directly and never materializes nodes.
#pragma once

#include <cstdint>

#include "mesh/path.hpp"
#include "mesh/types.hpp"
#include "util/small_vec.hpp"

namespace oblivious {

class Mesh;

// One maximal straight run: `run` unit steps along `dim`, in direction
// sign(run). On the torus steps wrap; |run| may exceed the side length
// when a path laps a dimension (only possible for hand-built paths --
// the routers never lap).
struct Segment {
  std::int32_t dim = 0;
  std::int64_t run = 0;

  bool operator==(const Segment& other) const = default;
};

struct SegmentPath {
  NodeId source = kInvalidNode;
  // Cached destination: converters compute it, routers set it directly.
  NodeId dest = kInvalidNode;
  SmallVec<Segment, 8> segments;

  NodeId destination() const { return dest; }
  // Number of edges (counting repeats when a run backtracks or laps).
  std::int64_t length() const {
    std::int64_t total = 0;
    for (const Segment& s : segments) total += std::abs(s.run);
    return total;
  }
  bool empty() const { return source == kInvalidNode; }

  // Appends a run, merging with the last segment when it continues in
  // the same dimension and direction (keeps runs maximal). run == 0 is
  // a no-op.
  void append(int dim, std::int64_t run) {
    if (run == 0) return;
    if (!segments.empty() && segments.back().dim == dim &&
        (segments.back().run > 0) == (run > 0)) {
      segments.back().run += run;
      return;
    }
    segments.push_back(Segment{static_cast<std::int32_t>(dim), run});
  }

  bool operator==(const SegmentPath& other) const {
    return source == other.source && dest == other.dest &&
           segments == other.segments;
  }
};

// Lossless converters. segments_from_path derives each hop's dimension
// and direction and merges maximal runs; path_from_segments replays the
// runs into the full node sequence (wrap-aware on the torus).
// \pre the input path / segment path is non-empty, every hop is a mesh
// edge, and replayed runs stay on the mesh.
SegmentPath segments_from_path(const Mesh& mesh, const Path& path);
Path path_from_segments(const Mesh& mesh, const SegmentPath& sp);

// True when the path is non-empty, starts and ends at its recorded
// endpoints, and every run stays on the mesh (wrap-aware).
bool is_valid_segment_path(const Mesh& mesh, const SegmentPath& sp);

// stretch = length / dist(source, dest); 1.0 for zero-length paths.
// \pre the segment path is non-empty.
double segment_path_stretch(const Mesh& mesh, const SegmentPath& sp);

}  // namespace oblivious
