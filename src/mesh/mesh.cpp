#include "mesh/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "mesh/region.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace oblivious {

Mesh::Mesh(std::vector<std::int64_t> sides, bool torus)
    : sides_(std::move(sides)), torus_(torus) {
  OBLV_REQUIRE(!sides_.empty(), "mesh needs at least one dimension");
  OBLV_REQUIRE(sides_.size() <= 16, "more than 16 dimensions is unsupported");
  num_nodes_ = 1;
  for (const std::int64_t s : sides_) {
    OBLV_REQUIRE(s >= 1, "every side length must be >= 1");
    OBLV_REQUIRE(num_nodes_ <= (std::int64_t{1} << 40) / s,
                 "mesh too large (> 2^40 nodes)");
    num_nodes_ *= s;
  }

  node_strides_.assign(sides_.size(), 1);
  for (std::size_t d = sides_.size(); d-- > 1;) {
    node_strides_[d - 1] = node_strides_[d] * sides_[d];
  }

  edge_offsets_.assign(sides_.size() + 1, 0);
  edge_dim_radix_.assign(sides_.size(), 0);
  for (std::size_t d = 0; d < sides_.size(); ++d) {
    // A torus dimension of side 1 or 2 would duplicate edges (self loop /
    // double edge); treat those as non-wrapping.
    const bool wraps = torus_ && sides_[d] > 2;
    edge_dim_radix_[d] = wraps ? sides_[d] : sides_[d] - 1;
    const std::int64_t edges_in_dim =
        edge_dim_radix_[d] * (num_nodes_ / sides_[d]);
    edge_offsets_[d + 1] = edge_offsets_[d] + edges_in_dim;
  }
  num_edges_ = edge_offsets_.back();
}

Mesh Mesh::cube(int dim, std::int64_t side, bool torus) {
  OBLV_REQUIRE(dim >= 1, "dimension must be >= 1");
  return Mesh(std::vector<std::int64_t>(static_cast<std::size_t>(dim), side), torus);
}

bool Mesh::is_square() const {
  return std::all_of(sides_.begin(), sides_.end(),
                     [&](std::int64_t s) { return s == sides_[0]; });
}

bool Mesh::sides_power_of_two() const {
  return std::all_of(sides_.begin(), sides_.end(), [](std::int64_t s) {
    return is_power_of_two(static_cast<std::uint64_t>(s));
  });
}

NodeId Mesh::node_id(const Coord& c) const {
  OBLV_REQUIRE(c.size() == sides_.size(), "coordinate dimension mismatch");
  NodeId id = 0;
  for (std::size_t d = 0; d < sides_.size(); ++d) {
    OBLV_REQUIRE(c[d] >= 0 && c[d] < sides_[d], "coordinate out of range");
    id += c[d] * node_strides_[d];
  }
  return id;
}

Coord Mesh::coord(NodeId id) const {
  OBLV_REQUIRE(id >= 0 && id < num_nodes_, "node id out of range");
  Coord c;
  c.resize(sides_.size());
  for (std::size_t d = 0; d < sides_.size(); ++d) {
    c[d] = id / node_strides_[d];
    id %= node_strides_[d];
  }
  return c;
}

bool Mesh::contains(const Coord& c) const {
  if (c.size() != sides_.size()) return false;
  for (std::size_t d = 0; d < sides_.size(); ++d) {
    if (c[d] < 0 || c[d] >= sides_[d]) return false;
  }
  return true;
}

Coord Mesh::wrap(Coord c) const {
  OBLV_REQUIRE(c.size() == sides_.size(), "coordinate dimension mismatch");
  for (std::size_t d = 0; d < sides_.size(); ++d) {
    if (torus_) {
      c[d] = pos_mod(c[d], sides_[d]);
    } else {
      OBLV_REQUIRE(c[d] >= 0 && c[d] < sides_[d],
                   "coordinate out of range on non-torus mesh");
    }
  }
  return c;
}

NodeId Mesh::step(NodeId u, int d, int dir) const {
  OBLV_REQUIRE(d >= 0 && d < dim(), "dimension out of range");
  OBLV_REQUIRE(dir == 1 || dir == -1, "direction must be +1 or -1");
  const std::size_t dd = static_cast<std::size_t>(d);
  const std::int64_t side_d = sides_[dd];
  const std::int64_t cd = (u / node_strides_[dd]) % side_d;
  std::int64_t nd = cd + dir;
  if (nd < 0 || nd >= side_d) {
    if (!torus_ || side_d <= 2) return kInvalidNode;
    nd = pos_mod(nd, side_d);
  }
  return u + (nd - cd) * node_strides_[dd];
}

std::vector<NodeId> Mesh::neighbors(NodeId u) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(2 * dim()));
  for (int d = 0; d < dim(); ++d) {
    for (int dir : {-1, 1}) {
      const NodeId v = step(u, d, dir);
      if (v != kInvalidNode && v != u) out.push_back(v);
    }
  }
  // A torus of side 2 reaches the same neighbor both ways; deduplicate.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Mesh::adjacent(NodeId a, NodeId b) const {
  if (a == b) return false;
  const Coord ca = coord(a);
  const Coord cb = coord(b);
  int diff_dim = -1;
  for (int d = 0; d < dim(); ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    if (ca[dd] == cb[dd]) continue;
    if (diff_dim != -1) return false;
    diff_dim = d;
  }
  if (diff_dim == -1) return false;
  const std::size_t dd = static_cast<std::size_t>(diff_dim);
  const std::int64_t delta = std::abs(ca[dd] - cb[dd]);
  if (delta == 1) return true;
  return torus_ && sides_[dd] > 2 && delta == sides_[dd] - 1;
}

std::int64_t Mesh::displacement(std::int64_t from, std::int64_t to, int d) const {
  const std::int64_t side_d = sides_[static_cast<std::size_t>(d)];
  std::int64_t delta = to - from;
  if (torus_) {
    // Shift into (-side/2, side/2]: the shorter way around.
    delta = pos_mod(delta, side_d);
    if (delta * 2 > side_d) delta -= side_d;
  }
  return delta;
}

std::int64_t Mesh::distance(const Coord& a, const Coord& b) const {
  OBLV_REQUIRE(a.size() == sides_.size() && b.size() == sides_.size(),
               "coordinate dimension mismatch");
  std::int64_t dist = 0;
  for (int d = 0; d < dim(); ++d) {
    dist += std::abs(displacement(a[static_cast<std::size_t>(d)],
                                  b[static_cast<std::size_t>(d)], d));
  }
  return dist;
}

std::int64_t Mesh::distance(NodeId a, NodeId b) const {
  return distance(coord(a), coord(b));
}

std::int64_t Mesh::diameter() const {
  std::int64_t diam = 0;
  for (const std::int64_t s : sides_) {
    diam += torus_ ? s / 2 : s - 1;
  }
  return diam;
}

EdgeId Mesh::edge_id(const Coord& u, int d) const {
  OBLV_REQUIRE(d >= 0 && d < dim(), "dimension out of range");
  const std::size_t dd = static_cast<std::size_t>(d);
  OBLV_REQUIRE(u.size() == sides_.size(), "coordinate dimension mismatch");
  OBLV_REQUIRE(u[dd] >= 0 && u[dd] < edge_dim_radix_[dd],
               "no +edge from this coordinate in this dimension");
  // Mixed-radix index with radix edge_dim_radix_[d] in dimension d.
  EdgeId idx = 0;
  for (std::size_t i = 0; i < sides_.size(); ++i) {
    const std::int64_t radix = (i == dd) ? edge_dim_radix_[i] : sides_[i];
    OBLV_REQUIRE(u[i] >= 0 && u[i] < sides_[i], "coordinate out of range");
    idx = idx * radix + u[i];
  }
  return edge_offsets_[dd] + idx;
}

EdgeId Mesh::edge_between(NodeId a, NodeId b) const {
  OBLV_REQUIRE(adjacent(a, b), "edge_between requires adjacent nodes");
  Coord ca = coord(a);
  const Coord cb = coord(b);
  for (int d = 0; d < dim(); ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    if (ca[dd] == cb[dd]) continue;
    const std::int64_t lo = std::min(ca[dd], cb[dd]);
    const std::int64_t hi = std::max(ca[dd], cb[dd]);
    if (hi - lo == 1) {
      ca[dd] = lo;  // edge keyed by its lower endpoint
    } else {
      ca[dd] = hi;  // wrap edge keyed by side-1
    }
    return edge_id(ca, d);
  }
  OBLV_UNREACHABLE("adjacent nodes with equal coordinates");
}

std::pair<NodeId, NodeId> Mesh::edge_endpoints(EdgeId e) const {
  OBLV_REQUIRE(e >= 0 && e < num_edges_, "edge id out of range");
  const int d = edge_dim(e);
  const std::size_t dd = static_cast<std::size_t>(d);
  EdgeId idx = e - edge_offsets_[dd];
  Coord u;
  u.resize(sides_.size());
  for (std::size_t i = sides_.size(); i-- > 0;) {
    const std::int64_t radix = (i == dd) ? edge_dim_radix_[i] : sides_[i];
    u[i] = idx % radix;
    idx /= radix;
  }
  const NodeId a = node_id(u);
  const NodeId b = step(a, d, 1);
  OBLV_CHECK(b != kInvalidNode, "edge endpoint off the mesh");
  return {a, b};
}

int Mesh::edge_dim(EdgeId e) const {
  OBLV_REQUIRE(e >= 0 && e < num_edges_, "edge id out of range");
  for (int d = 0; d < dim(); ++d) {
    if (e < edge_offsets_[static_cast<std::size_t>(d) + 1]) return d;
  }
  OBLV_UNREACHABLE("edge id not in any dimension range");
}

std::int64_t Mesh::boundary_edge_count(const Region& r) const {
  OBLV_REQUIRE(r.dim() == dim(), "region dimension mismatch");
  std::int64_t total = 0;
  const std::int64_t vol = r.volume();
  for (int d = 0; d < dim(); ++d) {
    const std::int64_t side_d = sides_[static_cast<std::size_t>(d)];
    const std::int64_t ext = r.extent_at(d);
    OBLV_REQUIRE(ext >= 1 && ext <= side_d, "region extent out of range");
    if (ext == side_d) continue;  // spans the whole dimension: no faces out
    const std::int64_t cross_section = vol / ext;
    if (torus_ && side_d > 2) {
      // Both faces always have outgoing wrap-aware edges.
      total += 2 * cross_section;
    } else {
      const std::int64_t lo = r.anchor_at(d);
      const std::int64_t hi = lo + ext - 1;
      OBLV_REQUIRE(lo >= 0 && hi < side_d, "region out of mesh bounds");
      if (lo > 0) total += cross_section;
      if (hi < side_d - 1) total += cross_section;
    }
  }
  return total;
}

std::string Mesh::describe() const {
  std::ostringstream os;
  os << (torus_ ? "torus" : "mesh") << "[";
  for (std::size_t d = 0; d < sides_.size(); ++d) {
    if (d > 0) os << "x";
    os << sides_[d];
  }
  os << "] (" << num_nodes_ << " nodes, " << num_edges_ << " edges)";
  return os.str();
}

}  // namespace oblivious
