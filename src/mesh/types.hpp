// Fundamental identifier and coordinate types for the mesh substrate.
#pragma once

#include <cstdint>

#include "util/small_vec.hpp"

namespace oblivious {

// Linear node index in [0, n).
using NodeId = std::int64_t;

// Linear undirected edge index in [0, E).
using EdgeId = std::int64_t;

// A d-dimensional integer coordinate. Inline up to 8 dimensions, which
// covers every experiment in the paper (d is a small constant).
using Coord = SmallVec<std::int64_t, 8>;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

}  // namespace oblivious
