// Synchronous store-and-forward packet simulator.
//
// This is the routing model of Section 1: time is slotted and at most one
// packet traverses any (undirected) edge per time step. Packets follow
// their pre-selected paths; when several packets request the same edge in
// the same step, a scheduling policy picks the winner and the rest wait in
// unbounded node queues. The trivial lower bound on the delivery time of
// any schedule is max(C, D) >= (C + D)/2, which is what every simulation
// result is compared against.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/sketch/load_accountant.hpp"
#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "util/stats.hpp"

namespace oblivious {

enum class SchedulingPolicy {
  kFifo,          // earliest arrival at the queue wins (ties: packet id)
  kFurthestToGo,  // most remaining hops wins
  kRandomRank,    // a static uniformly random priority per packet
};

struct SimulationOptions {
  SchedulingPolicy policy = SchedulingPolicy::kFurthestToGo;
  std::uint64_t seed = 1;  // used by kRandomRank
  // Hard step limit; 0 selects total-hops + dilation + 1, which any greedy
  // schedule satisfies (at least one packet advances per step).
  std::int64_t max_steps = 0;
  // Full-duplex links: each undirected edge carries one packet per
  // direction per step (the usual NoC model) instead of the paper's one
  // packet per edge per step. Halves contention for opposing traffic.
  bool full_duplex = false;
  // How result.congestion is accounted over the input path set (the
  // accounting pass is sequential, so sketch estimates are deterministic).
  AccountingOptions accounting;
};

struct SimulationResult {
  bool completed = false;
  std::int64_t makespan = 0;     // steps until the last delivery
  std::int64_t congestion = 0;   // C of the path set
  std::int64_t dilation = 0;     // D of the path set
  RunningStats latency;          // per-packet delivery step
  RunningStats queueing_delay;   // latency - path length, per packet
  // makespan / max(C, D): 1.0 is optimal, small constants are good.
  double optimality_ratio() const;
};

// \pre every path is a non-empty valid path of `mesh`.
SimulationResult simulate(const Mesh& mesh, const std::vector<Path>& paths,
                          const SimulationOptions& options = {});

std::string policy_name(SchedulingPolicy policy);

}  // namespace oblivious
