#include "simulator/online.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"

namespace oblivious {

double OnlineResult::throughput() const {
  if (horizon <= 0) return 0.0;
  return static_cast<double>(delivered) / static_cast<double>(horizon);
}

OnlineWorkload bernoulli_arrivals(const Mesh& mesh, double rate,
                                  std::int64_t horizon, TrafficPattern pattern,
                                  Rng& rng, std::int64_t local_distance) {
  OBLV_REQUIRE(rate >= 0.0 && rate <= 1.0, "rate must be in [0, 1]");
  OBLV_REQUIRE(horizon >= 0, "horizon must be non-negative");
  OnlineWorkload workload;
  workload.horizon = horizon;
  // Bernoulli draw via a 32-bit threshold (deterministic given the rng).
  const auto threshold =
      static_cast<std::uint64_t>(rate * 4294967296.0);  // rate * 2^32
  for (std::int64_t step = 0; step < horizon; ++step) {
    for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
      if (rng.bits(32) >= threshold) continue;
      NodeId dst = u;
      switch (pattern) {
        case TrafficPattern::kUniform: {
          while (dst == u) {
            dst = static_cast<NodeId>(rng.uniform_below(
                static_cast<std::uint64_t>(mesh.num_nodes())));
          }
          break;
        }
        case TrafficPattern::kLocal: {
          // Random node at exactly local_distance (rejection sampling over
          // random directions; falls back to uniform if the mesh is tiny).
          Coord c = mesh.coord(u);
          std::int64_t remaining =
              std::min(local_distance, mesh.diameter());
          for (int d = 0; d < mesh.dim() && remaining > 0; ++d) {
            const std::size_t dd = static_cast<std::size_t>(d);
            const std::int64_t span =
                mesh.torus() ? mesh.side(d) / 2 : mesh.side(d) - 1;
            std::int64_t take =
                (d == mesh.dim() - 1)
                    ? std::min(remaining, span)
                    : static_cast<std::int64_t>(rng.uniform_below(
                          static_cast<std::uint64_t>(
                              std::min(remaining, span) + 1)));
            remaining -= take;
            const bool can_up = mesh.torus() || c[dd] + take < mesh.side(d);
            const bool can_down = mesh.torus() || c[dd] - take >= 0;
            const bool up = can_up && (!can_down || rng.coin());
            c[dd] += up ? take : -take;
            if (mesh.torus()) c[dd] = pos_mod(c[dd], mesh.side(d));
          }
          dst = mesh.node_id(c);
          if (dst == u) continue;  // degenerate draw: skip this injection
          break;
        }
        case TrafficPattern::kTranspose: {
          OBLV_REQUIRE(mesh.dim() >= 2, "transpose pattern needs dim >= 2");
          Coord c = mesh.coord(u);
          std::swap(c[0], c[1]);
          dst = mesh.node_id(c);
          if (dst == u) continue;  // diagonal nodes have no partner
          break;
        }
      }
      workload.packets.push_back({u, dst, step});
    }
  }
  return workload;
}

OnlineResult simulate_online(const Mesh& mesh, const Router& router,
                             const OnlineWorkload& workload,
                             const OnlineOptions& options) {
  for (const TimedDemand& td : workload.packets) {
    OBLV_EXPECTS(td.src >= 0 && td.src < mesh.num_nodes() && td.dst >= 0 &&
                     td.dst < mesh.num_nodes(),
                 "online workload endpoints must be mesh nodes");
  }
  OBLV_REQUIRE(options.faults == nullptr || &options.faults->mesh() == &mesh,
               "fault model must describe the simulated mesh");
  OnlineResult result;
  result.horizon = workload.horizon;
  result.injected = static_cast<std::int64_t>(workload.packets.size());
  const std::int64_t max_steps =
      options.max_steps > 0 ? options.max_steps
                            : std::max<std::int64_t>(64 * workload.horizon, 4096);

  struct Flight {
    std::vector<EdgeId> edges;
    std::size_t hop = 0;
    std::int64_t injected_at = 0;
    std::int64_t arrival = 0;   // step it reached its current node
    std::uint64_t rank = 0;
    NodeId at = 0;              // current node (for queue accounting)
    NodeId dst = 0;             // destination (for fault re-routing)
    int retries = 0;            // in-flight requeues consumed
    std::int64_t wait_until = 0;  // backoff: idle until this step
  };
  const bool faulty =
      options.faults != nullptr && !options.faults->fault_free();

  Rng rng(options.seed);
  // One scratch for the whole simulation: path selection in the injection
  // loop reuses its buffers, so steady-state injections allocate only the
  // flight's own edge list.
  RouteScratch scratch;
  std::vector<Flight> flights;
  flights.reserve(workload.packets.size());
  std::vector<std::size_t> active;
  std::size_t next_packet = 0;

  const auto wins = [&](const Flight& a, const Flight& b, std::size_t ia,
                        std::size_t ib) {
    switch (options.policy) {
      case SchedulingPolicy::kFifo:
        if (a.arrival != b.arrival) return a.arrival < b.arrival;
        return ia < ib;
      case SchedulingPolicy::kFurthestToGo: {
        const auto ra = static_cast<std::int64_t>(a.edges.size() - a.hop);
        const auto rb = static_cast<std::int64_t>(b.edges.size() - b.hop);
        if (ra != rb) return ra > rb;
        return ia < ib;
      }
      case SchedulingPolicy::kRandomRank:
        if (a.rank != b.rank) return a.rank < b.rank;
        return ia < ib;
    }
    OBLV_UNREACHABLE("unknown policy");
  };

  std::unordered_map<EdgeId, std::size_t> winner;
  std::unordered_map<NodeId, std::int64_t> occupancy;
  const std::int64_t saturation_limit =
      options.saturation_queue_per_node > 0
          ? options.saturation_queue_per_node * mesh.num_nodes()
          : std::numeric_limits<std::int64_t>::max();
  std::int64_t step = 0;
  while ((next_packet < workload.packets.size() || !active.empty()) &&
         step < max_steps &&
         static_cast<std::int64_t>(active.size()) < saturation_limit) {
    // Inject this step's arrivals; each packet selects its path NOW,
    // obliviously -- no knowledge of in-flight traffic.
    while (next_packet < workload.packets.size() &&
           workload.packets[next_packet].inject_step <= step) {
      const TimedDemand& demand = workload.packets[next_packet];
      Flight flight;
      if (faulty) {
        // Path selection is probed against the schedule at the injection
        // step; a packet whose recovery budget is already exhausted at
        // selection time is a counted loss, not an injection.
        const FaultAwareRouter fault_router(router, *options.faults,
                                            options.retry, step);
        const FaultRouteOutcome outcome = fault_router.route_with_faults(
            demand.src, demand.dst, rng, scratch, scratch.path);
        if (!outcome.delivered()) {
          // oblv-lint: allow(D005) drop already counted into fault.drops
          // at the router's decision site
          ++result.dropped;
          ++next_packet;
          continue;
        }
        // oblv-lint: allow(D005) backoff already counted into
        // fault.backoff_steps by route_with_faults
        flight.wait_until = step + outcome.backoff_steps;
      } else {
        router.route_into(demand.src, demand.dst, rng, scratch, scratch.path);
      }
      const Path& path = scratch.path;
      flight.edges.reserve(static_cast<std::size_t>(path.length()));
      for (std::size_t j = 0; j + 1 < path.nodes.size(); ++j) {
        flight.edges.push_back(mesh.edge_between(path.nodes[j], path.nodes[j + 1]));
      }
      flight.injected_at = demand.inject_step;
      flight.arrival = step;
      flight.rank = rng.next_u64();
      flight.at = demand.src;
      flight.dst = demand.dst;
      if (flight.edges.empty()) {
        ++result.delivered;
        result.latency.add(0.0);
      } else {
        flights.push_back(std::move(flight));
        active.push_back(flights.size() - 1);
      }
      ++next_packet;
    }

    ++step;
    winner.clear();
    occupancy.clear();
    for (const std::size_t i : active) {
      const Flight& f = flights[i];
      result.max_node_queue = std::max(result.max_node_queue, ++occupancy[f.at]);
      // Backed-off and blocked-by-fault packets occupy their queue slot
      // but do not compete for an edge this step.
      if (f.wait_until > step) continue;
      const EdgeId e = f.edges[f.hop];
      if (faulty && options.faults->edge_failed(e, step)) continue;
      const auto it = winner.find(e);
      if (it == winner.end() || wins(f, flights[it->second], i, it->second)) {
        winner[e] = i;
      }
    }
    std::vector<std::size_t> still_active;
    still_active.reserve(active.size());
    for (const std::size_t i : active) {
      Flight& f = flights[i];
      if (f.wait_until > step) {
        still_active.push_back(i);
        continue;
      }
      const EdgeId e = f.edges[f.hop];
      if (faulty && options.faults->edge_failed(e, step)) {
        // The edge ahead died under the packet: requeue with fresh random
        // bits from the node it is stuck at, or drop once the budget is
        // spent -- the packet always leaves the network counted.
        if (f.retries >= options.retry.max_attempts) {
          ++result.dropped;
          OBLV_COUNTER_ADD("fault.drops", 1);
          continue;
        }
        ++f.retries;
        const std::int64_t backoff = options.retry.backoff_base
                                     << std::min(f.retries - 1, 32);
        OBLV_COUNTER_ADD("fault.retries", 1);
        OBLV_COUNTER_ADD("fault.backoff_steps",
                         static_cast<std::uint64_t>(backoff));
        f.wait_until = step + backoff;
        router.route_into(f.at, f.dst, rng, scratch, scratch.path);
        f.edges.clear();
        for (std::size_t j = 0; j + 1 < scratch.path.nodes.size(); ++j) {
          f.edges.push_back(mesh.edge_between(scratch.path.nodes[j],
                                              scratch.path.nodes[j + 1]));
        }
        f.hop = 0;
        f.arrival = step;
        still_active.push_back(i);
        continue;
      }
      if (winner[e] != i) {
        still_active.push_back(i);
        continue;
      }
      const auto [a, b] = mesh.edge_endpoints(e);
      f.at = (f.at == a) ? b : a;
      ++f.hop;
      f.arrival = step;
      if (f.hop == f.edges.size()) {
        ++result.delivered;
        result.latency.add(static_cast<double>(step - f.injected_at));
        result.last_delivery = std::max(result.last_delivery, step);
      } else {
        still_active.push_back(i);
      }
    }
    active = std::move(still_active);
  }

  result.completed = active.empty() && next_packet == workload.packets.size();
  if (result.completed) {
    OBLV_CHECK(result.delivered + result.dropped == result.injected,
               "online fault accounting: every injected packet must end "
               "delivered or dropped");
  }
  return result;
}

}  // namespace oblivious
