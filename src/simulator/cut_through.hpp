// Virtual cut-through (flit-level) delivery.
//
// The paper's model moves whole packets one hop per step. Real mesh
// networks pipeline: a packet of F flits occupies a train of links and
// advances its head one hop per step while the body streams behind, so an
// uncontended packet arrives after dist + F - 1 steps instead of
// dist * F. With unbounded node buffers (virtual cut-through rather than
// wormhole blocking) there is no flit-level deadlock for arbitrary paths,
// so all the oblivious path sets of this library can be delivered.
//
// The quality story transfers: a link crossed by C packets of F flits is
// busy for C*F steps, so delivery time is Omega(C F + D), and good
// schedules get close -- the same C-and-D tradeoff the paper optimizes,
// with the congestion term amplified by the packet size.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "simulator/simulator.hpp"
#include "util/stats.hpp"

namespace oblivious {

struct CutThroughOptions {
  std::int64_t flits_per_packet = 4;  // F >= 1 (F = 1 is store-and-forward)
  SchedulingPolicy policy = SchedulingPolicy::kFurthestToGo;
  std::uint64_t seed = 1;  // kRandomRank priorities
  // Hard step limit; 0 selects F * total-hops + dilation + F + 1.
  std::int64_t max_steps = 0;
  // One flit per direction per link per step when true; per edge when
  // false (the paper's undirected-capacity model).
  bool full_duplex = false;
};

struct CutThroughResult {
  bool completed = false;
  std::int64_t makespan = 0;    // step of the last tail-flit delivery
  std::int64_t congestion = 0;  // C of the path set (packets per edge)
  std::int64_t dilation = 0;    // D of the path set
  std::int64_t flits = 1;       // F
  RunningStats latency;         // per packet, head injection to tail arrival
  // makespan / max(C*F, D + F - 1): 1.0 is ideal pipelining.
  double optimality_ratio() const;
};

// \pre options.flits_per_packet >= 1 and every path is a non-empty
// valid path of `mesh`.
CutThroughResult simulate_cut_through(const Mesh& mesh,
                                      const std::vector<Path>& paths,
                                      const CutThroughOptions& options = {});

}  // namespace oblivious
