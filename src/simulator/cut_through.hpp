// Virtual cut-through (flit-level) delivery.
//
// The paper's model moves whole packets one hop per step. Real mesh
// networks pipeline: a packet of F flits occupies a train of links and
// advances its head one hop per step while the body streams behind, so an
// uncontended packet arrives after dist + F - 1 steps instead of
// dist * F. With unbounded node buffers (virtual cut-through rather than
// wormhole blocking) there is no flit-level deadlock for arbitrary paths,
// so all the oblivious path sets of this library can be delivered.
//
// The quality story transfers: a link crossed by C packets of F flits is
// busy for C*F steps, so delivery time is Omega(C F + D), and good
// schedules get close -- the same C-and-D tradeoff the paper optimizes,
// with the congestion term amplified by the packet size.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_model.hpp"
#include "fault/fault_router.hpp"
#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "simulator/simulator.hpp"
#include "util/stats.hpp"

namespace oblivious {

struct CutThroughOptions {
  std::int64_t flits_per_packet = 4;  // F >= 1 (F = 1 is store-and-forward)
  SchedulingPolicy policy = SchedulingPolicy::kFurthestToGo;
  std::uint64_t seed = 1;  // kRandomRank priorities
  // Hard step limit; 0 selects F * total-hops + dilation + F + 1.
  std::int64_t max_steps = 0;
  // One flit per direction per link per step when true; per edge when
  // false (the paper's undirected-capacity model).
  bool full_duplex = false;
  // Fault injection. nullptr (or a fault_free() model) preserves the
  // exact fault-free dynamics. With live faults a failed link refuses the
  // head flit; the stuck packet requeues under `retry` (waits out the
  // exponential backoff, then re-draws a fresh path from its current node
  // through `reroute_router` when one is supplied, or re-tries the same
  // link -- dynamic faults repair) and is dropped once the budget is
  // exhausted. Both pointers must outlive the simulation.
  const FaultModel* faults = nullptr;
  RetryPolicy retry;
  const Router* reroute_router = nullptr;
  // How result.congestion is accounted over the input path set (the
  // accounting pass is sequential, so sketch estimates are deterministic).
  AccountingOptions accounting;
};

struct CutThroughResult {
  bool completed = false;
  std::int64_t injected = 0;    // packets presented
  std::int64_t delivered = 0;   // tails fully drained
  // Packets lost to faults after exhausting the retry budget: counted,
  // never wedged. On a completed run delivered + dropped == injected
  // (checked by a contract).
  std::int64_t dropped = 0;
  std::int64_t makespan = 0;    // step of the last tail-flit delivery
  std::int64_t congestion = 0;  // C of the path set (packets per edge)
  std::int64_t dilation = 0;    // D of the path set
  std::int64_t flits = 1;       // F
  RunningStats latency;         // per packet, head injection to tail arrival
  // makespan / max(C*F, D + F - 1): 1.0 is ideal pipelining.
  double optimality_ratio() const;
};

// \pre options.flits_per_packet >= 1 and every path is a non-empty
// valid path of `mesh`.
CutThroughResult simulate_cut_through(const Mesh& mesh,
                                      const std::vector<Path>& paths,
                                      const CutThroughOptions& options = {});

}  // namespace oblivious
