#include "simulator/simulator.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "analysis/congestion.hpp"
#include "obs/metrics.hpp"
#include "mesh/contracts.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"

namespace oblivious {

namespace {

struct PacketState {
  std::size_t hop = 0;          // next edge index within its path
  std::int64_t arrival = 0;     // step it arrived at the current node
  std::uint64_t rank = 0;       // static random rank (kRandomRank)
};

}  // namespace

double SimulationResult::optimality_ratio() const {
  const std::int64_t bound = std::max(congestion, dilation);
  if (bound == 0) return 1.0;
  return static_cast<double>(makespan) / static_cast<double>(bound);
}

std::string policy_name(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kFurthestToGo:
      return "furthest-to-go";
    case SchedulingPolicy::kRandomRank:
      return "random-rank";
  }
  OBLV_UNREACHABLE("unknown policy");
}

SimulationResult simulate(const Mesh& mesh, const std::vector<Path>& paths,
                          const SimulationOptions& options) {
  OBLV_SCOPED_TIMER("simulate.seconds");
  const bool obs_on = obs::metrics_enabled();
  SimulationResult result;

  // Precompute the edge sequence of every path and the path-set metrics.
  std::vector<std::vector<EdgeId>> edges(paths.size());
  const std::unique_ptr<LoadAccountant> loads = LoadAccountant::create(
      mesh, options.accounting.mode, options.accounting.sketch);
  std::int64_t total_hops = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const Path& p = paths[i];
    OBLV_REQUIRE(!p.nodes.empty(), "simulation requires non-empty paths");
    OBLV_EXPECTS(contracts::validate_path_in_mesh(mesh, p),
                 "simulate needs paths that follow mesh edges");
    loads->add_path(p);
    edges[i].reserve(static_cast<std::size_t>(p.length()));
    for (std::size_t j = 0; j + 1 < p.nodes.size(); ++j) {
      edges[i].push_back(mesh.edge_between(p.nodes[j], p.nodes[j + 1]));
    }
    total_hops += p.length();
    result.dilation = std::max(result.dilation, p.length());
  }
  result.congestion = static_cast<std::int64_t>(loads->max_load());

  const std::int64_t max_steps =
      options.max_steps > 0 ? options.max_steps
                            : total_hops + result.dilation + 1;

  Rng rng(options.seed);
  std::vector<PacketState> state(paths.size());
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    state[i].rank = rng.next_u64();
    if (edges[i].empty()) {
      result.latency.add(0.0);
      result.queueing_delay.add(0.0);
    } else {
      active.push_back(i);
    }
  }

  // `wins(a, b)` is true when packet a beats packet b for an edge.
  const auto wins = [&](std::size_t a, std::size_t b) {
    switch (options.policy) {
      case SchedulingPolicy::kFifo: {
        if (state[a].arrival != state[b].arrival) {
          return state[a].arrival < state[b].arrival;
        }
        return a < b;
      }
      case SchedulingPolicy::kFurthestToGo: {
        const std::int64_t ra =
            static_cast<std::int64_t>(edges[a].size() - state[a].hop);
        const std::int64_t rb =
            static_cast<std::int64_t>(edges[b].size() - state[b].hop);
        if (ra != rb) return ra > rb;
        return a < b;
      }
      case SchedulingPolicy::kRandomRank: {
        if (state[a].rank != state[b].rank) return state[a].rank < state[b].rank;
        return a < b;
      }
    }
    OBLV_UNREACHABLE("unknown policy");
  };

  // Directed-link keying for full-duplex mode: fold the travel direction
  // into the arbitration key (2e for the +direction, 2e+1 for the -).
  std::vector<std::vector<std::uint8_t>> forward(paths.size());
  if (options.full_duplex) {
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const Path& p = paths[i];
      forward[i].reserve(static_cast<std::size_t>(p.length()));
      for (std::size_t j = 0; j + 1 < p.nodes.size(); ++j) {
        const auto [a, b] = mesh.edge_endpoints(edges[i][j]);
        forward[i].push_back(p.nodes[j] == a ? 1 : 0);
      }
    }
  }
  const auto arbitration_key = [&](std::size_t i) {
    const EdgeId e = edges[i][state[i].hop];
    if (!options.full_duplex) return e;
    return 2 * e + (forward[i][state[i].hop] != 0 ? 0 : 1);
  };

  std::unordered_map<EdgeId, std::size_t> winner;
  std::int64_t step = 0;
  // Queue-occupancy instrumentation: per step, the number of packets in
  // flight and the number parked in node queues (lost arbitration).
  IntHistogram inflight_hist;
  IntHistogram queued_hist;
  while (!active.empty() && step < max_steps) {
    ++step;
    winner.clear();
    for (const std::size_t i : active) {
      const EdgeId e = arbitration_key(i);
      const auto it = winner.find(e);
      if (it == winner.end() || wins(i, it->second)) winner[e] = i;
    }
    std::int64_t queued_this_step = 0;
    std::vector<std::size_t> still_active;
    still_active.reserve(active.size());
    for (const std::size_t i : active) {
      const EdgeId e = arbitration_key(i);
      if (winner[e] != i) {
        still_active.push_back(i);
        ++queued_this_step;
        continue;
      }
      ++state[i].hop;
      state[i].arrival = step;
      if (state[i].hop == edges[i].size()) {
        result.latency.add(static_cast<double>(step));
        result.queueing_delay.add(static_cast<double>(step) -
                                  static_cast<double>(edges[i].size()));
        result.makespan = std::max(result.makespan, step);
      } else {
        still_active.push_back(i);
      }
    }
    if (obs_on) {
      inflight_hist.add(static_cast<std::int64_t>(active.size()));
      queued_hist.add(queued_this_step);
    }
    active = std::move(still_active);
  }

  result.completed = active.empty();
  if (obs_on) {
    OBLV_COUNTER_ADD("simulate.packets", paths.size());
    OBLV_COUNTER_ADD("simulate.steps", step);
    OBLV_GAUGE_SET("simulate.makespan", result.makespan);
    OBLV_GAUGE_SET("simulate.optimality_ratio", result.optimality_ratio());
    OBLV_STAT_MERGE("simulate.latency_steps", result.latency);
    OBLV_STAT_MERGE("simulate.queueing_delay_steps", result.queueing_delay);
    OBLV_HISTOGRAM_MERGE("simulate.inflight_packets", inflight_hist);
    OBLV_HISTOGRAM_MERGE("simulate.queued_packets", queued_hist);
  }
  return result;
}

}  // namespace oblivious
