#include "simulator/cut_through.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "analysis/congestion.hpp"
#include "mesh/contracts.hpp"
#include "obs/metrics.hpp"
#include "rng/rng.hpp"
#include "routing/route_scratch.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"

namespace oblivious {

double CutThroughResult::optimality_ratio() const {
  const std::int64_t bound =
      std::max(congestion * flits, dilation + flits - 1);
  if (bound == 0) return 1.0;
  return static_cast<double>(makespan) / static_cast<double>(bound);
}

CutThroughResult simulate_cut_through(const Mesh& mesh,
                                      const std::vector<Path>& paths,
                                      const CutThroughOptions& options) {
  OBLV_REQUIRE(options.flits_per_packet >= 1, "packets need >= 1 flit");
  OBLV_REQUIRE(options.faults == nullptr || &options.faults->mesh() == &mesh,
               "fault model must describe the simulated mesh");
  OBLV_REQUIRE(options.reroute_router == nullptr ||
                   &options.reroute_router->mesh() == &mesh,
               "reroute router must route on the simulated mesh");
  const std::int64_t F = options.flits_per_packet;

  CutThroughResult result;
  result.flits = F;
  result.injected = static_cast<std::int64_t>(paths.size());
  const bool faulty =
      options.faults != nullptr && !options.faults->fault_free();

  // Edge (and direction) sequences plus path-set metrics.
  std::vector<std::vector<EdgeId>> keys(paths.size());
  const std::unique_ptr<LoadAccountant> loads = LoadAccountant::create(
      mesh, options.accounting.mode, options.accounting.sketch);
  std::int64_t total_hops = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const Path& p = paths[i];
    OBLV_REQUIRE(!p.nodes.empty(), "simulation requires non-empty paths");
    OBLV_EXPECTS(contracts::validate_path_in_mesh(mesh, p),
                 "cut-through simulation needs paths that follow mesh edges");
    loads->add_path(p);
    keys[i].reserve(static_cast<std::size_t>(p.length()));
    for (std::size_t j = 0; j + 1 < p.nodes.size(); ++j) {
      const EdgeId e = mesh.edge_between(p.nodes[j], p.nodes[j + 1]);
      if (options.full_duplex) {
        const auto [a, b] = mesh.edge_endpoints(e);
        keys[i].push_back(2 * e + (p.nodes[j] == a ? 0 : 1));
      } else {
        keys[i].push_back(e);
      }
    }
    total_hops += p.length();
    result.dilation = std::max(result.dilation, p.length());
  }
  result.congestion = static_cast<std::int64_t>(loads->max_load());

  // Under faults the default budget gets slack for backoff waits and
  // repair intervals; runs that still exceed it report completed = false.
  const std::int64_t fault_free_budget =
      F * total_hops + result.dilation + F + 1;
  const std::int64_t max_steps =
      options.max_steps > 0
          ? options.max_steps
          : (faulty ? 4 * fault_free_budget + 1024 : fault_free_budget);

  struct PacketState {
    std::size_t hop = 0;       // next link index
    std::int64_t ready = 1;    // earliest step the head can cross again
    std::uint64_t rank = 0;
    int retries = 0;           // fault requeues consumed
    std::int64_t wait_until = 0;  // backoff: head idles until this step
  };

  // Mutable node sequences, needed only when a reroute can rewrite a
  // packet's remaining path.
  std::vector<std::vector<NodeId>> cur_nodes;
  if (faulty) {
    cur_nodes.resize(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
      cur_nodes[i] = paths[i].nodes;
    }
  }
  const auto edge_of = [&](EdgeId key) {
    return options.full_duplex ? key / 2 : key;
  };

  Rng rng(options.seed);
  RouteScratch scratch;
  std::vector<PacketState> state(paths.size());
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    state[i].rank = rng.next_u64();
    if (keys[i].empty()) {
      result.latency.add(static_cast<double>(F - 1));  // tail drains locally
      ++result.delivered;
    } else {
      active.push_back(i);
    }
  }

  // A link streams one packet's F flits at a time: busy through this step.
  std::unordered_map<EdgeId, std::int64_t> busy_until;

  const auto wins = [&](std::size_t a, std::size_t b) {
    switch (options.policy) {
      case SchedulingPolicy::kFifo:
        if (state[a].ready != state[b].ready) return state[a].ready < state[b].ready;
        return a < b;
      case SchedulingPolicy::kFurthestToGo: {
        const auto ra = static_cast<std::int64_t>(keys[a].size() - state[a].hop);
        const auto rb = static_cast<std::int64_t>(keys[b].size() - state[b].hop);
        if (ra != rb) return ra > rb;
        return a < b;
      }
      case SchedulingPolicy::kRandomRank:
        if (state[a].rank != state[b].rank) return state[a].rank < state[b].rank;
        return a < b;
    }
    OBLV_UNREACHABLE("unknown policy");
  };

  std::unordered_map<EdgeId, std::size_t> winner;
  std::int64_t step = 0;
  while (!active.empty() && step < max_steps) {
    ++step;
    winner.clear();
    for (const std::size_t i : active) {
      if (state[i].ready > step || state[i].wait_until > step) continue;
      const EdgeId key = keys[i][state[i].hop];
      // A failed link refuses the head flit; the packet requeues below.
      if (faulty && options.faults->edge_failed(edge_of(key), step)) continue;
      const auto busy = busy_until.find(key);
      if (busy != busy_until.end() && busy->second >= step) continue;
      const auto it = winner.find(key);
      if (it == winner.end() || wins(i, it->second)) winner[key] = i;
    }
    std::vector<std::size_t> still_active;
    still_active.reserve(active.size());
    for (const std::size_t i : active) {
      const EdgeId key = keys[i][state[i].hop];
      if (faulty && state[i].ready <= step && state[i].wait_until <= step &&
          options.faults->edge_failed(edge_of(key), step)) {
        // Requeue with backoff, or drop once the budget is spent -- the
        // packet always leaves the network counted.
        if (state[i].retries >= options.retry.max_attempts) {
          ++result.dropped;
          OBLV_COUNTER_ADD("fault.drops", 1);
          continue;
        }
        ++state[i].retries;
        const std::int64_t backoff = options.retry.backoff_base
                                     << std::min(state[i].retries - 1, 32);
        OBLV_COUNTER_ADD("fault.retries", 1);
        OBLV_COUNTER_ADD("fault.backoff_steps",
                         static_cast<std::uint64_t>(backoff));
        state[i].wait_until = step + backoff;
        if (options.reroute_router != nullptr) {
          // Fresh random bits from the node the head is stuck at.
          const NodeId at = cur_nodes[i][state[i].hop];
          const NodeId dst = cur_nodes[i].back();
          options.reroute_router->route_into(at, dst, rng, scratch,
                                             scratch.path);
          cur_nodes[i] = scratch.path.nodes;
          keys[i].clear();
          for (std::size_t j = 0; j + 1 < cur_nodes[i].size(); ++j) {
            const EdgeId e =
                mesh.edge_between(cur_nodes[i][j], cur_nodes[i][j + 1]);
            if (options.full_duplex) {
              const auto [a, b] = mesh.edge_endpoints(e);
              keys[i].push_back(2 * e + (cur_nodes[i][j] == a ? 0 : 1));
            } else {
              keys[i].push_back(e);
            }
          }
          state[i].hop = 0;
        }
        still_active.push_back(i);
        continue;
      }
      const auto it = winner.find(key);
      if (it == winner.end() || it->second != i || state[i].ready > step ||
          state[i].wait_until > step) {
        still_active.push_back(i);
        continue;
      }
      // The head crosses at this step; the link streams flits behind it.
      busy_until[key] = step + F - 1;
      ++state[i].hop;
      state[i].ready = step + 1;
      if (state[i].hop == keys[i].size()) {
        const std::int64_t tail_arrival = step + F - 1;
        result.latency.add(static_cast<double>(tail_arrival));
        result.makespan = std::max(result.makespan, tail_arrival);
        ++result.delivered;
      } else {
        still_active.push_back(i);
      }
    }
    active = std::move(still_active);
  }

  result.completed = active.empty();
  if (result.completed) {
    OBLV_CHECK(result.delivered + result.dropped == result.injected,
               "cut-through fault accounting: every packet must end "
               "delivered or dropped");
  }
  return result;
}

}  // namespace oblivious
