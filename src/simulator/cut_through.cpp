#include "simulator/cut_through.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/congestion.hpp"
#include "mesh/contracts.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"

namespace oblivious {

double CutThroughResult::optimality_ratio() const {
  const std::int64_t bound =
      std::max(congestion * flits, dilation + flits - 1);
  if (bound == 0) return 1.0;
  return static_cast<double>(makespan) / static_cast<double>(bound);
}

CutThroughResult simulate_cut_through(const Mesh& mesh,
                                      const std::vector<Path>& paths,
                                      const CutThroughOptions& options) {
  OBLV_REQUIRE(options.flits_per_packet >= 1, "packets need >= 1 flit");
  const std::int64_t F = options.flits_per_packet;

  CutThroughResult result;
  result.flits = F;

  // Edge (and direction) sequences plus path-set metrics.
  std::vector<std::vector<EdgeId>> keys(paths.size());
  EdgeLoadMap loads(mesh);
  std::int64_t total_hops = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const Path& p = paths[i];
    OBLV_REQUIRE(!p.nodes.empty(), "simulation requires non-empty paths");
    OBLV_EXPECTS(contracts::validate_path_in_mesh(mesh, p),
                 "cut-through simulation needs paths that follow mesh edges");
    loads.add_path(p);
    keys[i].reserve(static_cast<std::size_t>(p.length()));
    for (std::size_t j = 0; j + 1 < p.nodes.size(); ++j) {
      const EdgeId e = mesh.edge_between(p.nodes[j], p.nodes[j + 1]);
      if (options.full_duplex) {
        const auto [a, b] = mesh.edge_endpoints(e);
        keys[i].push_back(2 * e + (p.nodes[j] == a ? 0 : 1));
      } else {
        keys[i].push_back(e);
      }
    }
    total_hops += p.length();
    result.dilation = std::max(result.dilation, p.length());
  }
  result.congestion = static_cast<std::int64_t>(loads.max_load());

  const std::int64_t max_steps =
      options.max_steps > 0
          ? options.max_steps
          : F * total_hops + result.dilation + F + 1;

  struct PacketState {
    std::size_t hop = 0;       // next link index
    std::int64_t ready = 1;    // earliest step the head can cross again
    std::uint64_t rank = 0;
  };

  Rng rng(options.seed);
  std::vector<PacketState> state(paths.size());
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    state[i].rank = rng.next_u64();
    if (keys[i].empty()) {
      result.latency.add(static_cast<double>(F - 1));  // tail drains locally
    } else {
      active.push_back(i);
    }
  }

  // A link streams one packet's F flits at a time: busy through this step.
  std::unordered_map<EdgeId, std::int64_t> busy_until;

  const auto wins = [&](std::size_t a, std::size_t b) {
    switch (options.policy) {
      case SchedulingPolicy::kFifo:
        if (state[a].ready != state[b].ready) return state[a].ready < state[b].ready;
        return a < b;
      case SchedulingPolicy::kFurthestToGo: {
        const auto ra = static_cast<std::int64_t>(keys[a].size() - state[a].hop);
        const auto rb = static_cast<std::int64_t>(keys[b].size() - state[b].hop);
        if (ra != rb) return ra > rb;
        return a < b;
      }
      case SchedulingPolicy::kRandomRank:
        if (state[a].rank != state[b].rank) return state[a].rank < state[b].rank;
        return a < b;
    }
    OBLV_UNREACHABLE("unknown policy");
  };

  std::unordered_map<EdgeId, std::size_t> winner;
  std::int64_t step = 0;
  while (!active.empty() && step < max_steps) {
    ++step;
    winner.clear();
    for (const std::size_t i : active) {
      if (state[i].ready > step) continue;  // head mid-hop
      const EdgeId key = keys[i][state[i].hop];
      const auto busy = busy_until.find(key);
      if (busy != busy_until.end() && busy->second >= step) continue;
      const auto it = winner.find(key);
      if (it == winner.end() || wins(i, it->second)) winner[key] = i;
    }
    std::vector<std::size_t> still_active;
    still_active.reserve(active.size());
    for (const std::size_t i : active) {
      const EdgeId key = keys[i][state[i].hop];
      const auto it = winner.find(key);
      if (it == winner.end() || it->second != i || state[i].ready > step) {
        still_active.push_back(i);
        continue;
      }
      // The head crosses at this step; the link streams flits behind it.
      busy_until[key] = step + F - 1;
      ++state[i].hop;
      state[i].ready = step + 1;
      if (state[i].hop == keys[i].size()) {
        const std::int64_t tail_arrival = step + F - 1;
        result.latency.add(static_cast<double>(tail_arrival));
        result.makespan = std::max(result.makespan, tail_arrival);
      } else {
        still_active.push_back(i);
      }
    }
    active = std::move(still_active);
  }

  result.completed = active.empty();
  return result;
}

}  // namespace oblivious
