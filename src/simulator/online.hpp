// Online routing: packets continuously arrive in the network.
//
// Section 1 motivates oblivious path selection precisely because it solves
// the *online* problem -- each packet picks its path at injection time,
// independently of everything else in flight. This module injects packets
// over time (Bernoulli arrivals per node per step), routes each one
// obliviously the moment it arrives, and runs the same synchronous
// one-packet-per-edge dynamics as the batch simulator. Sweeping the
// injection rate produces the classic latency-vs-offered-load curve and
// the saturation throughput of each algorithm (experiment E11).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_model.hpp"
#include "fault/fault_router.hpp"
#include "mesh/mesh.hpp"
#include "routing/router.hpp"
#include "simulator/simulator.hpp"
#include "util/stats.hpp"

namespace oblivious {

struct TimedDemand {
  NodeId src = 0;
  NodeId dst = 0;
  std::int64_t inject_step = 0;
};

struct OnlineWorkload {
  std::vector<TimedDemand> packets;  // sorted by inject_step
  std::int64_t horizon = 0;          // injections happen in [0, horizon)
};

// Destination distribution for synthetic arrivals.
enum class TrafficPattern {
  kUniform,    // uniformly random destination != source
  kLocal,      // random destination at exactly `local_distance`
  kTranspose,  // fixed transpose partner (dims 0 and 1 swapped)
};

// Bernoulli arrivals: at every step in [0, horizon), every node injects a
// packet with probability `rate` toward a pattern-drawn destination.
// `rate` in [0, 1] is the offered load in packets per node per step.
// \pre 0 <= rate <= 1 and horizon >= 0.
OnlineWorkload bernoulli_arrivals(const Mesh& mesh, double rate,
                                  std::int64_t horizon, TrafficPattern pattern,
                                  Rng& rng, std::int64_t local_distance = 4);

struct OnlineResult {
  bool completed = false;         // everything delivered or dropped in time
  std::int64_t injected = 0;
  std::int64_t delivered = 0;
  // Packets lost to faults after exhausting the retry budget: counted,
  // never wedged. On a completed run delivered + dropped == injected
  // (checked by a contract).
  std::int64_t dropped = 0;
  std::int64_t last_delivery = 0;  // step of the final delivery
  RunningStats latency;            // delivery - injection, per packet
  std::int64_t max_node_queue = 0; // worst queue occupancy at any node
  // Delivered packets per step over the injection horizon.
  double throughput() const;
  std::int64_t horizon = 0;
};

struct OnlineOptions {
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
  std::uint64_t seed = 1;   // path selection + random-rank priorities
  // Stop after this many steps even if packets remain (0: 64 * horizon).
  std::int64_t max_steps = 0;
  // Declare saturation and stop early once more than this many packets per
  // node are simultaneously in flight (0: disabled). Keeps offered-load
  // sweeps fast in the divergent regime.
  std::int64_t saturation_queue_per_node = 0;
  // Fault injection. nullptr (or a fault_free() model) preserves the
  // exact fault-free dynamics and rng stream. With live faults, injection
  // routes through a FaultAwareRouter probed at the injection step, a
  // failed edge refuses traversal, and an in-flight packet stuck on a
  // newly failed edge requeues under `retry`: it waits out the
  // exponential backoff, re-draws a fresh path from its current node, and
  // is dropped (counted in `dropped` and fault.drops) once the budget is
  // exhausted. The model must outlive the simulation.
  const FaultModel* faults = nullptr;
  RetryPolicy retry;
};

// Injects, routes obliviously at arrival, and delivers.
// \pre every workload packet's endpoints are node ids of `mesh`.
OnlineResult simulate_online(const Mesh& mesh, const Router& router,
                             const OnlineWorkload& workload,
                             const OnlineOptions& options = {});

}  // namespace oblivious
