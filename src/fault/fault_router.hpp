// Retry-with-rerandomization recovery around any oblivious router.
//
// Because path selection is oblivious (Section 1), recovery from a dead
// link needs no global state: the packet simply re-draws its path with
// fresh random bits -- the new draw is independent of the old one, so the
// congestion guarantees keep applying to whatever traffic is delivered.
// FaultAwareRouter wraps any Router with exactly that policy:
//
//   1. bounded retry: up to `max_attempts` inner draws, each validated
//      against the FaultModel; attempt k is charged an exponential
//      backoff of backoff_base * 2^(k-1) simulator steps;
//   2. last-resort greedy detour: a deterministic locally-greedy walk
//      (productive dimension first, randomized sidestep when boxed in)
//      around the failed edges;
//   3. drop: a packet that exhausts both is dropped and *counted*
//      (fault.drops) -- never wedged, never silently lost.
//
// Determinism: every decision consumes the packet's own rng stream, so
// the decorator composes with the counter-derived per-packet streams of
// route_batch -- output is bit-identical for any thread count. With a
// fault_free() model the decorator forwards straight to the inner router
// and is draw-for-draw identical to the unwrapped engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fault/fault_model.hpp"
#include "routing/router.hpp"

namespace oblivious {

struct RetryPolicy {
  // Total inner draws per packet (>= 1); attempts beyond the first are
  // the "retries" in the fault.* accounting.
  int max_attempts = 4;
  // Backoff charged before retry k (k = 1 is the first retry):
  // backoff_base * 2^(k-1) simulator steps. 0 disables backoff.
  std::int64_t backoff_base = 1;
  // Greedy-detour hop budget: detour_cap_factor * dist(s, t) + 16.
  std::int64_t detour_cap_factor = 8;
};

enum class FaultRouteStatus {
  kClean,     // first draw avoided every failed edge
  kRetried,   // a re-draw (attempt >= 2) succeeded
  kDetoured,  // the greedy detour delivered a path
  kDropped,   // budget exhausted; the packet is counted as lost
};

struct FaultRouteOutcome {
  FaultRouteStatus status = FaultRouteStatus::kClean;
  int attempts = 1;                // inner draws consumed
  std::int64_t backoff_steps = 0;  // total backoff charged
  std::int64_t detour_hops = 0;    // length of the detour path, if any

  bool delivered() const { return status != FaultRouteStatus::kDropped; }
};

class FaultAwareRouter final : public Router {
 public:
  // `inner` and `faults` must outlive the decorator and share the mesh.
  // `query_step` is the instant the fault schedule is probed at (batch
  // routing selects every path at one point in time).
  // \pre inner.mesh() and faults.mesh() are the same object, and the
  // policy has max_attempts >= 1, backoff_base >= 0, detour_cap_factor
  // >= 1 (violations throw).
  FaultAwareRouter(const Router& inner, const FaultModel& faults,
                   const RetryPolicy& policy = {},
                   std::int64_t query_step = 0);

  const Router& inner() const { return *inner_; }
  const FaultModel& faults() const { return *faults_; }
  const RetryPolicy& policy() const { return policy_; }
  std::int64_t query_step() const { return query_step_; }

  // Full-outcome entry point. On kDropped, `out` holds the last inner
  // draw (a valid mesh path that crosses a failed edge) so callers that
  // ignore the outcome still satisfy the Router postconditions; callers
  // that honor it must treat the packet as undeliverable.
  FaultRouteOutcome route_with_faults(NodeId s, NodeId t, Rng& rng,
                                      RouteScratch& scratch, Path& out) const;
  FaultRouteOutcome route_segments_with_faults(NodeId s, NodeId t, Rng& rng,
                                               RouteScratch& scratch,
                                               SegmentPath& out) const;

  // Router interface: the same recovery policy, outcome reported only
  // through the fault.* metrics. Draw-for-draw identical to the inner
  // router when the model is fault_free().
  Path route(NodeId s, NodeId t, Rng& rng) const override;
  SegmentPath route_segments(NodeId s, NodeId t, Rng& rng) const override;
  void route_into(NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
                  Path& out) const override;
  void route_segments_into(NodeId s, NodeId t, Rng& rng,
                           RouteScratch& scratch,
                           SegmentPath& out) const override;

  std::string name() const override { return inner_->name() + "+fault"; }
  bool deterministic() const override { return inner_->deterministic(); }

  // Deterministic greedy walk from s to t avoiding failed edges: steps
  // along the dimension with the largest remaining displacement whose
  // edge is alive, and sidesteps (rng tie-broken, avoiding immediate
  // backtrack) when every productive edge is dead. Returns false when the
  // hop budget runs out before reaching t; `out` then holds the partial
  // walk. Exposed for tests.
  bool greedy_detour(NodeId s, NodeId t, std::int64_t step, Rng& rng,
                     Path& out) const;

 private:
  void record_outcome(const Mesh& mesh, NodeId s, NodeId t,
                      const FaultRouteOutcome& outcome,
                      std::int64_t path_length) const;

  const Router* inner_;
  const FaultModel* faults_;
  RetryPolicy policy_;
  std::int64_t query_step_;
};

// Convenience: wraps `inner` only when the model can actually fail
// something; otherwise returns nullptr (callers keep using `inner`).
std::unique_ptr<FaultAwareRouter> wrap_if_faulty(
    const Router& inner, const FaultModel& faults,
    const RetryPolicy& policy = {}, std::int64_t query_step = 0);

}  // namespace oblivious
