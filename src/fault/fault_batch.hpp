// Fault-aware twin of the chunked batch routing driver.
//
// route_batch_with_faults drives a FaultAwareRouter over a demand array
// with the exact scheme of parallel/route_batch.cpp -- atomic chunk
// cursor, per-worker RouteScratch, per-packet rng streams derived from
// (seed, index) -- and additionally records each packet's recovery
// outcome. Because both the fault schedule and the packet streams are
// counter-derived, the produced paths AND the per-packet statuses are
// bit-identical for any thread count, chunk size, and claim order.
//
// Accounting contract: every demand is either delivered (clean, retried,
// or detoured) or dropped -- delivered + dropped == demands.size() is
// checked before returning; a packet can never wedge or vanish.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_router.hpp"
#include "mesh/path.hpp"
#include "mesh/segment_path.hpp"
#include "parallel/route_batch.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

class ThreadPool;

// Deterministic batch-level recovery tally (integer sums only: the merge
// order across workers cannot change the result).
struct FaultBatchStats {
  std::int64_t demands = 0;    // packets presented to the router
  std::int64_t delivered = 0;  // clean + retried + detoured
  std::int64_t dropped = 0;    // budget exhausted, counted losses
  std::int64_t clean = 0;      // first draw avoided every failed edge
  std::int64_t retried = 0;    // recovered by re-randomization
  std::int64_t detoured = 0;   // recovered by the greedy detour
  std::int64_t attempts = 0;   // total inner draws consumed
  std::int64_t backoff_steps = 0;  // total backoff charged
};

// Routes demands[i] into out[i] and statuses[i] (both resized to match).
// For a dropped packet, out[i] holds the last inner draw (see
// FaultAwareRouter::route_with_faults); statuses[i] says whether to trust
// it. Pass statuses as nullptr to keep only the aggregate stats.
// \pre every demand's endpoints are node ids of the router's mesh.
FaultBatchStats route_batch_with_faults(
    const FaultAwareRouter& router, std::span<const Demand> demands,
    ThreadPool& pool, const RouteBatchOptions& options,
    std::vector<SegmentPath>& out,
    std::vector<FaultRouteStatus>* statuses = nullptr);

// Node-list twin (same rng streams, same statuses).
// \pre every demand's endpoints are node ids of the router's mesh.
FaultBatchStats route_batch_paths_with_faults(
    const FaultAwareRouter& router, std::span<const Demand> demands,
    ThreadPool& pool, const RouteBatchOptions& options,
    std::vector<Path>& out,
    std::vector<FaultRouteStatus>* statuses = nullptr);

}  // namespace oblivious
