#include "fault/fault_router.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/contracts.hpp"

namespace oblivious {

FaultAwareRouter::FaultAwareRouter(const Router& inner,
                                   const FaultModel& faults,
                                   const RetryPolicy& policy,
                                   std::int64_t query_step)
    : Router(inner.mesh()),
      inner_(&inner),
      faults_(&faults),
      policy_(policy),
      query_step_(query_step) {
  OBLV_REQUIRE(&inner.mesh() == &faults.mesh(),
               "router and fault model must share one mesh");
  OBLV_REQUIRE(policy.max_attempts >= 1, "retry policy needs >= 1 attempt");
  OBLV_REQUIRE(policy.backoff_base >= 0, "backoff base must be non-negative");
  OBLV_REQUIRE(policy.detour_cap_factor >= 1,
               "detour cap factor must be >= 1");
}

namespace {

// Backoff charged before retry k (1-based): base * 2^(k-1), shift-capped
// so pathological budgets cannot overflow.
inline std::int64_t backoff_for_retry(std::int64_t base, int k) {
  const int shift = std::min(k - 1, 32);
  return base << shift;
}

}  // namespace

void FaultAwareRouter::record_outcome(const Mesh& mesh, NodeId s, NodeId t,
                                      const FaultRouteOutcome& outcome,
                                      std::int64_t path_length) const {
  if (outcome.status == FaultRouteStatus::kClean) return;
  OBLV_COUNTER_ADD("fault.retries",
                   static_cast<std::uint64_t>(outcome.attempts - 1));
  OBLV_COUNTER_ADD("fault.backoff_steps",
                   static_cast<std::uint64_t>(outcome.backoff_steps));
  if (outcome.status == FaultRouteStatus::kDetoured) {
    OBLV_COUNTER_ADD("fault.detours", 1);
  }
  if (outcome.delivered()) {
    OBLV_COUNTER_ADD("fault.delivered_despite_faults", 1);
    // Degraded stretch: hops actually walked plus the backoff steps the
    // packet sat out, over the fault-free shortest distance.
    const double dist =
        static_cast<double>(std::max<std::int64_t>(mesh.distance(s, t), 1));
    OBLV_HISTOGRAM_ADD(
        "fault.degraded_stretch",
        (static_cast<double>(path_length) +
         static_cast<double>(outcome.backoff_steps)) /
            dist);
  }
}

FaultRouteOutcome FaultAwareRouter::route_with_faults(NodeId s, NodeId t,
                                                      Rng& rng,
                                                      RouteScratch& scratch,
                                                      Path& out) const {
  FaultRouteOutcome outcome;
  if (faults_->fault_free()) {
    inner_->route_into(s, t, rng, scratch, out);
    return outcome;
  }
  expects_route_args(s, t);
  inner_->route_into(s, t, rng, scratch, out);
  if (faults_->node_failed(s) || faults_->node_failed(t)) {
    // A dead endpoint is unrecoverable: no re-draw or detour can help.
    outcome.status = FaultRouteStatus::kDropped;
    OBLV_COUNTER_ADD("fault.drops", 1);
    record_outcome(*mesh_, s, t, outcome, out.length());
    return outcome;
  }
  if (!faults_->path_failed(out, query_step_)) {
    return outcome;  // first draw is clean
  }
  while (outcome.attempts < policy_.max_attempts) {
    ++outcome.attempts;
    outcome.backoff_steps +=
        backoff_for_retry(policy_.backoff_base, outcome.attempts - 1);
    inner_->route_into(s, t, rng, scratch, out);
    if (!faults_->path_failed(out, query_step_)) {
      outcome.status = FaultRouteStatus::kRetried;
      record_outcome(*mesh_, s, t, outcome, out.length());
      return outcome;
    }
  }
  if (greedy_detour(s, t, query_step_, rng, scratch.fault_detour)) {
    out.nodes.assign(scratch.fault_detour.nodes.begin(),
                     scratch.fault_detour.nodes.end());
    outcome.status = FaultRouteStatus::kDetoured;
    outcome.detour_hops = out.length();
    record_outcome(*mesh_, s, t, outcome, out.length());
    return outcome;
  }
  // Budget exhausted: the packet is dropped and counted; `out` keeps the
  // last inner draw so Router-interface callers still see a valid path.
  outcome.status = FaultRouteStatus::kDropped;
  OBLV_COUNTER_ADD("fault.drops", 1);
  record_outcome(*mesh_, s, t, outcome, out.length());
  return outcome;
}

FaultRouteOutcome FaultAwareRouter::route_segments_with_faults(
    NodeId s, NodeId t, Rng& rng, RouteScratch& scratch,
    SegmentPath& out) const {
  FaultRouteOutcome outcome;
  if (faults_->fault_free()) {
    inner_->route_segments_into(s, t, rng, scratch, out);
    return outcome;
  }
  expects_route_args(s, t);
  inner_->route_segments_into(s, t, rng, scratch, out);
  if (faults_->node_failed(s) || faults_->node_failed(t)) {
    outcome.status = FaultRouteStatus::kDropped;
    OBLV_COUNTER_ADD("fault.drops", 1);
    record_outcome(*mesh_, s, t, outcome, out.length());
    return outcome;
  }
  if (!faults_->segments_failed(out, query_step_)) {
    return outcome;
  }
  while (outcome.attempts < policy_.max_attempts) {
    ++outcome.attempts;
    outcome.backoff_steps +=
        backoff_for_retry(policy_.backoff_base, outcome.attempts - 1);
    inner_->route_segments_into(s, t, rng, scratch, out);
    if (!faults_->segments_failed(out, query_step_)) {
      outcome.status = FaultRouteStatus::kRetried;
      record_outcome(*mesh_, s, t, outcome, out.length());
      return outcome;
    }
  }
  if (greedy_detour(s, t, query_step_, rng, scratch.fault_detour)) {
    out = segments_from_path(*mesh_, scratch.fault_detour);
    outcome.status = FaultRouteStatus::kDetoured;
    outcome.detour_hops = out.length();
    record_outcome(*mesh_, s, t, outcome, out.length());
    return outcome;
  }
  outcome.status = FaultRouteStatus::kDropped;
  OBLV_COUNTER_ADD("fault.drops", 1);
  record_outcome(*mesh_, s, t, outcome, out.length());
  return outcome;
}

bool FaultAwareRouter::greedy_detour(NodeId s, NodeId t, std::int64_t step,
                                     Rng& rng, Path& out) const {
  const Mesh& mesh = *mesh_;
  out.nodes.clear();
  out.nodes.push_back(s);
  if (s == t) return true;
  const std::int64_t cap =
      policy_.detour_cap_factor * std::max<std::int64_t>(mesh.distance(s, t), 1) +
      16;
  const Coord target = mesh.coord(t);
  NodeId cur = s;
  NodeId prev = kInvalidNode;
  for (std::int64_t hops = 0; hops < cap && cur != t; ++hops) {
    const Coord cc = mesh.coord(cur);
    NodeId next = kInvalidNode;
    // Productive steps first, largest remaining displacement first (ties
    // break toward the lower dimension: fully deterministic).
    struct ProductiveDim {
      std::int64_t neg_abs;  // -|displacement|: ascending sort = biggest first
      std::int32_t d;
    };
    SmallVec<ProductiveDim, 8> productive;
    for (int d = 0; d < mesh.dim(); ++d) {
      const std::int64_t disp = mesh.displacement(
          cc[static_cast<std::size_t>(d)],
          target[static_cast<std::size_t>(d)], d);
      if (disp != 0) {
        productive.push_back({std::min(disp, -disp), d});
      }
    }
    std::sort(productive.begin(), productive.end(),
              [](const ProductiveDim& a, const ProductiveDim& b) {
                return a.neg_abs != b.neg_abs ? a.neg_abs < b.neg_abs
                                              : a.d < b.d;
              });
    for (const auto& [neg_abs, d] : productive) {
      (void)neg_abs;
      const std::int64_t disp = mesh.displacement(
          cc[static_cast<std::size_t>(d)],
          target[static_cast<std::size_t>(d)], d);
      const NodeId v = mesh.step(cur, d, disp > 0 ? +1 : -1);
      if (v == kInvalidNode) continue;
      if (faults_->edge_failed(mesh.edge_between(cur, v), step)) continue;
      next = v;
      break;
    }
    if (next == kInvalidNode) {
      // Boxed in: sidestep through any live edge except straight back,
      // rng-picked so repeated dead ends become a random walk rather than
      // a deterministic ping-pong.
      SmallVec<NodeId, 16> alive;
      for (int d = 0; d < mesh.dim(); ++d) {
        for (const int dir : {+1, -1}) {
          const NodeId v = mesh.step(cur, d, dir);
          if (v == kInvalidNode || v == prev) continue;
          if (faults_->edge_failed(mesh.edge_between(cur, v), step)) continue;
          alive.push_back(v);
        }
      }
      if (!alive.empty()) {
        next = alive[static_cast<std::size_t>(rng.uniform_below(
            static_cast<std::uint64_t>(alive.size())))];
      } else if (prev != kInvalidNode &&
                 !faults_->edge_failed(mesh.edge_between(cur, prev), step)) {
        next = prev;  // dead end: backtrack
      } else {
        return false;  // stranded: every incident edge is dead
      }
    }
    prev = cur;
    cur = next;
    out.nodes.push_back(cur);
  }
  return cur == t;
}

Path FaultAwareRouter::route(NodeId s, NodeId t, Rng& rng) const {
  Path out;
  RouteScratch scratch;
  route_into(s, t, rng, scratch, out);
  return out;
}

SegmentPath FaultAwareRouter::route_segments(NodeId s, NodeId t,
                                             Rng& rng) const {
  SegmentPath out;
  RouteScratch scratch;
  route_segments_into(s, t, rng, scratch, out);
  return out;
}

void FaultAwareRouter::route_into(NodeId s, NodeId t, Rng& rng,
                                  RouteScratch& scratch, Path& out) const {
  (void)route_with_faults(s, t, rng, scratch, out);
  ensures_route_result(s, t, out);
}

void FaultAwareRouter::route_segments_into(NodeId s, NodeId t, Rng& rng,
                                           RouteScratch& scratch,
                                           SegmentPath& out) const {
  (void)route_segments_with_faults(s, t, rng, scratch, out);
  ensures_route_result(s, t, out);
}

std::unique_ptr<FaultAwareRouter> wrap_if_faulty(const Router& inner,
                                                 const FaultModel& faults,
                                                 const RetryPolicy& policy,
                                                 std::int64_t query_step) {
  if (faults.fault_free()) return nullptr;
  return std::make_unique<FaultAwareRouter>(inner, faults, policy, query_step);
}

}  // namespace oblivious
