// Deterministic, seeded fault injection for the mesh.
//
// The paper's selling point (Section 1) is that oblivious path selection
// is online and local: a packet's path depends only on (source,
// destination, private random bits). That is exactly what makes recovery
// cheap -- a packet whose path hits a dead link can re-draw fresh random
// bits and try again with no global recomputation. FaultModel supplies
// the broken mesh to recover from: static edge/node masks plus a dynamic
// fail/repair timeline (Bernoulli per-edge failure with geometric repair,
// the two-state Markov chain every link-failure study uses).
//
// Determinism contract: the entire timeline is derived from
// (seed, edge id) by the same counter scheme as the per-packet rng
// streams -- edge e's chain is walked with its own Rng(f(seed, e)), so
// the schedule is bit-identical no matter how many threads consume it,
// in what order, or on which platform (integer threshold draws only, no
// floating-point transcendentals).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "mesh/segment_path.hpp"
#include "rng/rng.hpp"

namespace oblivious {

struct FaultConfig {
  // Per-edge per-step failure probability (up -> down transition).
  double edge_fail_prob = 0.0;
  // Per-edge per-step repair probability (down -> up transition): downtime
  // durations are Geometric(edge_repair_prob).
  double edge_repair_prob = 0.25;
  // Steps covered by the dynamic schedule; queries at step >= horizon see
  // only the static masks. With edge_fail_prob > 0, horizon >= 1 lets the
  // stationary initial state materialize (a horizon-1 model is a static
  // snapshot drawn from the chain's stationary distribution).
  std::int64_t horizon = 0;
  std::uint64_t seed = 1;
  // Edges/nodes dead at every step. A failed node refuses all traversal:
  // its incident edges are treated as statically failed.
  std::vector<EdgeId> failed_edges;
  std::vector<NodeId> failed_nodes;
};

// Immutable after construction; safe to share across threads.
class FaultModel {
 public:
  // Materializes the fail/repair timeline for every edge.
  // \pre probabilities are in [0, 1], horizon >= 0, and every mask id is
  // an edge/node of `mesh` (out-of-range ids throw).
  FaultModel(const Mesh& mesh, const FaultConfig& config);

  const Mesh& mesh() const { return *mesh_; }
  const FaultConfig& config() const { return config_; }

  // True when nothing can ever fail: no masks and zero failure rate (the
  // fault-aware pipeline short-circuits to the fault-free engine).
  bool fault_free() const { return fault_free_; }

  bool node_failed(NodeId u) const {
    return !node_failed_.empty() &&
           node_failed_[static_cast<std::size_t>(u)] != 0;
  }

  // True when edge `e` refuses traversal at `step` (static mask, failed
  // endpoint, or a scheduled down interval covering the step).
  bool edge_failed(EdgeId e, std::int64_t step = 0) const {
    if (fault_free_) return false;
    if (static_edge_failed_[static_cast<std::size_t>(e)] != 0) return true;
    return dynamic_edge_failed(e, step);
  }

  // True when any hop of the path crosses a failed edge at `step` (the
  // whole path is probed against one instant: path selection happens at a
  // single point in time).
  bool path_failed(const Path& path, std::int64_t step = 0) const;
  bool segments_failed(const SegmentPath& sp, std::int64_t step = 0) const;

  // Total fail events: statically masked edges (incident edges of failed
  // nodes included) plus every scheduled down interval.
  std::int64_t failures_injected() const { return failures_injected_; }
  std::int64_t static_failed_edges() const { return static_failed_count_; }

  // Down intervals [start, end) of one edge, in increasing start order
  // (exposed for tests and the degradation reports).
  std::vector<std::pair<std::int64_t, std::int64_t>> intervals(EdgeId e) const;

 private:
  bool dynamic_edge_failed(EdgeId e, std::int64_t step) const;

  const Mesh* mesh_;
  FaultConfig config_;
  bool fault_free_ = true;
  std::int64_t failures_injected_ = 0;
  std::int64_t static_failed_count_ = 0;
  std::vector<std::uint8_t> static_edge_failed_;
  std::vector<std::uint8_t> node_failed_;
  // CSR layout of the per-edge down intervals: edge e's intervals live in
  // intervals_[interval_offsets_[e] .. interval_offsets_[e + 1]).
  std::vector<std::size_t> interval_offsets_;
  std::vector<std::pair<std::int64_t, std::int64_t>> intervals_;
};

}  // namespace oblivious
