#include "fault/fault_model.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace oblivious {

namespace {

// Deterministic per-edge stream, decorrelated from the per-packet routing
// streams (parallel/route_batch.hpp) by a domain tag.
inline Rng edge_rng(std::uint64_t seed, EdgeId e) {
  constexpr std::uint64_t kFaultDomain = 0x5fa017f5u;
  return Rng(splitmix64(seed ^ kFaultDomain ^
                        splitmix64(static_cast<std::uint64_t>(e))));
}

// Integer Bernoulli threshold: probability p as a 32-bit fixed-point
// cutoff, matching the arrival sampling in simulator/online.cpp. No
// floating-point accumulates across draws, so the timeline replays
// bit-for-bit on every platform.
inline std::uint64_t threshold32(double p) {
  return static_cast<std::uint64_t>(p * 4294967296.0);  // p * 2^32
}

}  // namespace

FaultModel::FaultModel(const Mesh& mesh, const FaultConfig& config)
    : mesh_(&mesh), config_(config) {
  OBLV_REQUIRE(
      config.edge_fail_prob >= 0.0 && config.edge_fail_prob <= 1.0,
      "edge_fail_prob must be in [0, 1]");
  OBLV_REQUIRE(
      config.edge_repair_prob >= 0.0 && config.edge_repair_prob <= 1.0,
      "edge_repair_prob must be in [0, 1]");
  OBLV_REQUIRE(config.horizon >= 0, "fault horizon must be non-negative");
  const auto num_edges = static_cast<std::size_t>(mesh.num_edges());
  const auto num_nodes = static_cast<std::size_t>(mesh.num_nodes());

  static_edge_failed_.assign(num_edges, 0);
  if (!config.failed_nodes.empty()) node_failed_.assign(num_nodes, 0);
  for (const NodeId u : config.failed_nodes) {
    OBLV_REQUIRE(u >= 0 && u < mesh.num_nodes(),
                 "failed node id off the mesh");
    node_failed_[static_cast<std::size_t>(u)] = 1;
    // A dead node refuses all traversal: kill its incident edges.
    for (int d = 0; d < mesh.dim(); ++d) {
      for (const int dir : {+1, -1}) {
        const NodeId v = mesh.step(u, d, dir);
        if (v != kInvalidNode) {
          static_edge_failed_[static_cast<std::size_t>(
              mesh.edge_between(u, v))] = 1;
        }
      }
    }
  }
  for (const EdgeId e : config.failed_edges) {
    OBLV_REQUIRE(e >= 0 && e < mesh.num_edges(),
                 "failed edge id off the mesh");
    static_edge_failed_[static_cast<std::size_t>(e)] = 1;
  }
  for (const std::uint8_t f : static_edge_failed_) {
    static_failed_count_ += f;
  }
  failures_injected_ = static_failed_count_;

  const bool dynamic =
      config.edge_fail_prob > 0.0 && config.horizon > 0;
  fault_free_ = static_failed_count_ == 0 && !dynamic;

  interval_offsets_.assign(num_edges + 1, 0);
  if (dynamic) {
    // Walk each edge's two-state Markov chain over [0, horizon) with its
    // own counter-derived stream. The initial state is drawn from the
    // chain's stationary distribution p / (p + r) so a horizon-1 model is
    // a meaningful static snapshot.
    const std::uint64_t fail_cut = threshold32(config.edge_fail_prob);
    const std::uint64_t repair_cut = threshold32(config.edge_repair_prob);
    const double p = config.edge_fail_prob;
    const double r = config.edge_repair_prob;
    const std::uint64_t initial_cut =
        p + r > 0.0 ? threshold32(p / (p + r)) : 0;
    for (std::size_t e = 0; e < num_edges; ++e) {
      // oblv-lint: allow(D006) per-EDGE schedule derivation, one stream
      // per edge by definition -- not a packet batch loop
      Rng rng = edge_rng(config.seed, static_cast<EdgeId>(e));
      bool down = rng.bits(32) < initial_cut;
      std::int64_t down_start = 0;
      for (std::int64_t step = 1; step < config.horizon; ++step) {
        if (down) {
          if (rng.bits(32) < repair_cut) {
            intervals_.emplace_back(down_start, step);
            down = false;
          }
        } else if (rng.bits(32) < fail_cut) {
          down_start = step;
          down = true;
        }
      }
      if (down) intervals_.emplace_back(down_start, config.horizon);
      interval_offsets_[e + 1] = intervals_.size();
    }
    failures_injected_ += static_cast<std::int64_t>(intervals_.size());
  } else {
    // No dynamic schedule: every edge's interval range is empty.
    for (std::size_t e = 0; e < num_edges; ++e) interval_offsets_[e + 1] = 0;
  }

  OBLV_COUNTER_ADD("fault.failures_injected",
                   static_cast<std::uint64_t>(failures_injected_));
}

bool FaultModel::dynamic_edge_failed(EdgeId e, std::int64_t step) const {
  const auto idx = static_cast<std::size_t>(e);
  const std::size_t lo = interval_offsets_[idx];
  const std::size_t hi = interval_offsets_[idx + 1];
  if (lo == hi || step < 0 || step >= config_.horizon) return false;
  // Last interval starting at or before `step`.
  const auto* begin = intervals_.data() + lo;
  const auto* end = intervals_.data() + hi;
  const auto* it = std::upper_bound(
      begin, end, step, [](std::int64_t s, const auto& iv) {
        return s < iv.first;
      });
  if (it == begin) return false;
  --it;
  return step < it->second;
}

bool FaultModel::path_failed(const Path& path, std::int64_t step) const {
  if (fault_free_) return false;
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    if (edge_failed(mesh_->edge_between(path.nodes[i], path.nodes[i + 1]),
                    step)) {
      return true;
    }
  }
  return false;
}

bool FaultModel::segments_failed(const SegmentPath& sp,
                                 std::int64_t step) const {
  if (fault_free_ || sp.empty()) return false;
  Coord c = mesh_->coord(sp.source);
  for (const Segment& seg : sp.segments) {
    const int d = static_cast<int>(seg.dim);
    const int dir = seg.run > 0 ? +1 : -1;
    for (std::int64_t k = 0; k < std::abs(seg.run); ++k) {
      // edge_id keys on the lower endpoint of the hop along dimension d.
      Coord lower = c;
      if (dir < 0) {
        lower[static_cast<std::size_t>(d)] -= 1;
        if (mesh_->torus()) lower = mesh_->wrap(lower);
      }
      if (edge_failed(mesh_->edge_id(lower, d), step)) return true;
      c[static_cast<std::size_t>(d)] += dir;
      if (mesh_->torus()) c = mesh_->wrap(c);
    }
  }
  return false;
}

std::vector<std::pair<std::int64_t, std::int64_t>> FaultModel::intervals(
    EdgeId e) const {
  OBLV_REQUIRE(e >= 0 && e < mesh_->num_edges(), "edge id off the mesh");
  const auto idx = static_cast<std::size_t>(e);
  return {intervals_.begin() + static_cast<std::ptrdiff_t>(
                                   interval_offsets_[idx]),
          intervals_.begin() + static_cast<std::ptrdiff_t>(
                                   interval_offsets_[idx + 1])};
}

}  // namespace oblivious
