#include "fault/fault_batch.hpp"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace oblivious {

namespace {

inline FaultRouteOutcome route_one(const FaultAwareRouter& router,
                                   const Demand& demand, Rng& rng,
                                   RouteScratch& scratch, Path& out) {
  return router.route_with_faults(demand.src, demand.dst, rng, scratch, out);
}
inline FaultRouteOutcome route_one(const FaultAwareRouter& router,
                                   const Demand& demand, Rng& rng,
                                   RouteScratch& scratch, SegmentPath& out) {
  return router.route_segments_with_faults(demand.src, demand.dst, rng,
                                           scratch, out);
}

template <typename OutT>
FaultBatchStats run_fault_batch(const FaultAwareRouter& router,
                                std::span<const Demand> demands,
                                ThreadPool& pool,
                                const RouteBatchOptions& options,
                                std::vector<OutT>& out,
                                std::vector<FaultRouteStatus>* statuses) {
  const Mesh& mesh = router.mesh();
  for (const Demand& demand : demands) {
    OBLV_REQUIRE(demand.src >= 0 && demand.src < mesh.num_nodes() &&
                     demand.dst >= 0 && demand.dst < mesh.num_nodes(),
                 "demand endpoints must be mesh nodes");
  }
  const std::size_t n = demands.size();
  out.resize(n);
  if (statuses != nullptr) statuses->resize(n);
  FaultBatchStats stats;
  stats.demands = static_cast<std::int64_t>(n);
  if (n == 0) return stats;

  WallTimer timer;
  const std::size_t workers = std::max<std::size_t>(1, pool.num_threads());
  const std::size_t chunk =
      options.chunk_size != 0
          ? options.chunk_size
          : std::max<std::size_t>(1, n / (workers * 8));
  std::atomic<std::size_t> cursor{0};
  // Function-local merge lock: the analysis cannot attach GUARDED_BY to
  // a stack variable, but the annotated type keeps the D008 discipline
  // (no naked std sync primitives) uniform across the tree.
  oblv::Mutex stats_mutex;

  const auto drain = [&]() {
    RouteScratch scratch;
    FaultBatchStats local;
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        // oblv-lint: allow(D006) retry/backoff makes the draw count
        // data-dependent, so fault routing cannot share a lane program
        Rng rng = packet_rng(options.seed, i);
        const FaultRouteOutcome outcome =
            route_one(router, demands[i], rng, scratch, out[i]);
        if (statuses != nullptr) (*statuses)[i] = outcome.status;
        local.attempts += outcome.attempts;
        local.backoff_steps += outcome.backoff_steps;
        switch (outcome.status) {
          case FaultRouteStatus::kClean:
            ++local.clean;
            break;
          case FaultRouteStatus::kRetried:
            ++local.retried;
            break;
          case FaultRouteStatus::kDetoured:
            ++local.detoured;
            break;
          case FaultRouteStatus::kDropped:
            // oblv-lint: allow(D005) tally of a drop the router already
            // counted into fault.drops at the decision site
            ++local.dropped;
            break;
        }
      }
    }
    // Integer sums merge associatively: the lock only serializes the
    // merge, it cannot change the totals.
    oblv::MutexLock lock(stats_mutex);
    stats.clean += local.clean;
    stats.retried += local.retried;
    stats.detoured += local.detoured;
    stats.dropped += local.dropped;
    stats.attempts += local.attempts;
    stats.backoff_steps += local.backoff_steps;
  };

  if (workers == 1) {
    drain();
  } else {
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit(drain);
    }
    pool.wait_idle();
  }
  stats.delivered = stats.clean + stats.retried + stats.detoured;
  OBLV_CHECK(stats.delivered + stats.dropped == stats.demands,
             "fault batch accounting: delivered + dropped must equal the "
             "demand count");
  OBLV_STAT_RECORD("routing.route_seconds", timer.elapsed_seconds());
  return stats;
}

}  // namespace

FaultBatchStats route_batch_with_faults(
    const FaultAwareRouter& router, std::span<const Demand> demands,
    ThreadPool& pool, const RouteBatchOptions& options,
    std::vector<SegmentPath>& out, std::vector<FaultRouteStatus>* statuses) {
  return run_fault_batch(router, demands, pool, options, out, statuses);
}

FaultBatchStats route_batch_paths_with_faults(
    const FaultAwareRouter& router, std::span<const Demand> demands,
    ThreadPool& pool, const RouteBatchOptions& options, std::vector<Path>& out,
    std::vector<FaultRouteStatus>* statuses) {
  return run_fault_batch(router, demands, pool, options, out, statuses);
}

}  // namespace oblivious
