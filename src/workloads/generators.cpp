#include "workloads/generators.hpp"

#include <algorithm>
#include <numeric>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace oblivious {

RoutingProblem random_permutation(const Mesh& mesh, Rng& rng) {
  const NodeId n = mesh.num_nodes();
  std::vector<NodeId> targets(static_cast<std::size_t>(n));
  std::iota(targets.begin(), targets.end(), NodeId{0});
  rng.shuffle(targets.data(), targets.size());
  RoutingProblem problem;
  problem.demands.reserve(targets.size());
  for (NodeId u = 0; u < n; ++u) {
    problem.demands.push_back({u, targets[static_cast<std::size_t>(u)]});
  }
  return problem;
}

RoutingProblem transpose(const Mesh& mesh) {
  OBLV_REQUIRE(mesh.dim() >= 2, "transpose needs dim >= 2");
  OBLV_REQUIRE(mesh.side(0) == mesh.side(1),
               "transpose needs equal sides in dimensions 0 and 1");
  RoutingProblem problem;
  problem.demands.reserve(static_cast<std::size_t>(mesh.num_nodes()));
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    Coord c = mesh.coord(u);
    std::swap(c[0], c[1]);
    problem.demands.push_back({u, mesh.node_id(c)});
  }
  return problem;
}

RoutingProblem bit_reversal(const Mesh& mesh) {
  OBLV_REQUIRE(mesh.sides_power_of_two(), "bit reversal needs power-of-two sides");
  RoutingProblem problem;
  problem.demands.reserve(static_cast<std::size_t>(mesh.num_nodes()));
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    Coord c = mesh.coord(u);
    for (int d = 0; d < mesh.dim(); ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      const std::int64_t side = mesh.side(d);
      if (side == 1) continue;
      const int nbits = floor_log2(static_cast<std::uint64_t>(side));
      std::int64_t reversed = 0;
      for (int b = 0; b < nbits; ++b) {
        reversed = (reversed << 1) | ((c[dd] >> b) & 1);
      }
      c[dd] = reversed;
    }
    problem.demands.push_back({u, mesh.node_id(c)});
  }
  return problem;
}

RoutingProblem tornado(const Mesh& mesh) {
  const std::int64_t shift = std::max<std::int64_t>(1, mesh.side(0) / 2 - 1);
  RoutingProblem problem;
  problem.demands.reserve(static_cast<std::size_t>(mesh.num_nodes()));
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    Coord c = mesh.coord(u);
    c[0] = pos_mod(c[0] + shift, mesh.side(0));
    problem.demands.push_back({u, mesh.node_id(c)});
  }
  return problem;
}

RoutingProblem hotspot(const Mesh& mesh, Rng& rng, std::size_t num_sources) {
  OBLV_REQUIRE(num_sources <= static_cast<std::size_t>(mesh.num_nodes()),
               "more sources than nodes");
  std::vector<NodeId> nodes(static_cast<std::size_t>(mesh.num_nodes()));
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  rng.shuffle(nodes.data(), nodes.size());
  const NodeId sink = nodes.back();
  RoutingProblem problem;
  problem.demands.reserve(num_sources);
  for (std::size_t i = 0; i < num_sources; ++i) {
    if (nodes[i] == sink) continue;
    problem.demands.push_back({nodes[i], sink});
  }
  return problem;
}

RoutingProblem nearest_neighbor(const Mesh& mesh, Rng& rng) {
  RoutingProblem problem;
  problem.demands.reserve(static_cast<std::size_t>(mesh.num_nodes()));
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    const auto nbrs = mesh.neighbors(u);
    if (nbrs.empty()) continue;
    const std::size_t pick = static_cast<std::size_t>(rng.uniform_below(nbrs.size()));
    problem.demands.push_back({u, nbrs[pick]});
  }
  return problem;
}

RoutingProblem random_pairs_at_distance(const Mesh& mesh, Rng& rng,
                                        std::size_t count, std::int64_t dist) {
  OBLV_REQUIRE(dist >= 0 && dist <= mesh.diameter(),
               "requested distance exceeds the diameter");
  RoutingProblem problem;
  problem.demands.reserve(count);
  while (problem.demands.size() < count) {
    const NodeId s = static_cast<NodeId>(
        rng.uniform_below(static_cast<std::uint64_t>(mesh.num_nodes())));
    // Random walk of exactly `dist` outward steps: distribute the distance
    // over dimensions, then pick a feasible direction per dimension.
    Coord c = mesh.coord(s);
    std::int64_t remaining = dist;
    bool ok = true;
    for (int d = 0; d < mesh.dim() && remaining > 0; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      const std::int64_t span = mesh.torus() ? mesh.side(d) / 2 : mesh.side(d) - 1;
      std::int64_t take = (d == mesh.dim() - 1)
                              ? remaining
                              : static_cast<std::int64_t>(rng.uniform_below(
                                    static_cast<std::uint64_t>(
                                        std::min(remaining, span) + 1)));
      if (take > span) {
        ok = false;
        break;
      }
      remaining -= take;
      // Pick a direction that stays on the mesh.
      const bool can_up = mesh.torus() || c[dd] + take < mesh.side(d);
      const bool can_down = mesh.torus() || c[dd] - take >= 0;
      if (!can_up && !can_down) {
        ok = false;
        break;
      }
      const bool up = can_up && (!can_down || rng.coin());
      c[dd] = up ? c[dd] + take : c[dd] - take;
      if (mesh.torus()) c[dd] = pos_mod(c[dd], mesh.side(d));
    }
    if (!ok || remaining != 0) continue;
    const NodeId t = mesh.node_id(c);
    if (mesh.distance(s, t) != dist) continue;  // torus folding shortened it
    problem.demands.push_back({s, t});
  }
  return problem;
}

RoutingProblem block_exchange(const Mesh& mesh, std::int64_t l, int dim) {
  OBLV_REQUIRE(dim >= 0 && dim < mesh.dim(), "dimension out of range");
  OBLV_REQUIRE(l >= 1, "slab thickness must be >= 1");
  OBLV_REQUIRE(mesh.side(dim) % (2 * l) == 0,
               "side must be divisible by 2l for block exchange");
  const std::size_t dd = static_cast<std::size_t>(dim);
  RoutingProblem problem;
  problem.demands.reserve(static_cast<std::size_t>(mesh.num_nodes()));
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    Coord c = mesh.coord(u);
    const std::int64_t slab = c[dd] / l;
    c[dd] += (slab % 2 == 0) ? l : -l;
    problem.demands.push_back({u, mesh.node_id(c)});
  }
  return problem;
}

RoutingProblem cut_straddlers(const Mesh& mesh, int dim) {
  OBLV_REQUIRE(dim >= 0 && dim < mesh.dim(), "dimension out of range");
  OBLV_REQUIRE(mesh.side(dim) >= 2, "side too small for a bisector");
  const std::size_t dd = static_cast<std::size_t>(dim);
  const std::int64_t left = mesh.side(dim) / 2 - 1;
  const std::int64_t right = mesh.side(dim) / 2;
  RoutingProblem problem;
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    Coord c = mesh.coord(u);
    if (c[dd] != left && c[dd] != right) continue;
    Coord o = c;
    o[dd] = (c[dd] == left) ? right : left;
    problem.demands.push_back({u, mesh.node_id(o)});
  }
  return problem;
}

}  // namespace oblivious
