#include "workloads/problem.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace oblivious {

std::int64_t RoutingProblem::max_distance(const Mesh& mesh) const {
  std::int64_t max_dist = 0;
  for (const Demand& d : demands) {
    max_dist = std::max(max_dist, mesh.distance(d.src, d.dst));
  }
  return max_dist;
}

std::int64_t RoutingProblem::total_distance(const Mesh& mesh) const {
  std::int64_t total = 0;
  for (const Demand& d : demands) total += mesh.distance(d.src, d.dst);
  return total;
}

bool RoutingProblem::is_partial_permutation(const Mesh& mesh) const {
  std::unordered_set<NodeId> sources;
  std::unordered_set<NodeId> destinations;
  for (const Demand& d : demands) {
    OBLV_REQUIRE(d.src >= 0 && d.src < mesh.num_nodes(), "source off the mesh");
    OBLV_REQUIRE(d.dst >= 0 && d.dst < mesh.num_nodes(), "destination off the mesh");
    if (!sources.insert(d.src).second) return false;
    if (!destinations.insert(d.dst).second) return false;
  }
  return true;
}

}  // namespace oblivious
