// A routing problem Pi = { (s_i, t_i) } (Section 2): the set of packets,
// each with a source and a destination.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/types.hpp"

namespace oblivious {

struct Demand {
  NodeId src = 0;
  NodeId dst = 0;

  bool operator==(const Demand& other) const = default;
};

struct RoutingProblem {
  std::vector<Demand> demands;

  std::size_t size() const { return demands.size(); }
  bool empty() const { return demands.empty(); }

  // D* = max_i dist(s_i, t_i), the maximum shortest distance (Section 2).
  std::int64_t max_distance(const Mesh& mesh) const;
  // Total shortest-path work sum_i dist(s_i, t_i).
  std::int64_t total_distance(const Mesh& mesh) const;
  // True when sources and destinations each form a permutation of a subset
  // of nodes (each node is the source of at most one packet and the
  // destination of at most one packet).
  // \pre every demand's endpoints are node ids of `mesh`.
  bool is_partial_permutation(const Mesh& mesh) const;
};

}  // namespace oblivious
