// The Section 5.1 adversarial construction Pi_A.
//
// Given any kappa-choice algorithm A, the paper builds a routing problem
// on which A must suffer expected congestion >= l / (kappa d): start from
// a permutation in which every packet travels exactly distance l (the
// block-exchange workload), take each packet's most likely path under A,
// find the most loaded edge e, and keep only the packets whose likely path
// crosses e (Lemma 5.1).
//
// For deterministic algorithms (kappa = 1) the construction is exact; for
// randomized algorithms the modal path is estimated by sampling.
#pragma once

#include <cstdint>

#include "mesh/mesh.hpp"
#include "routing/router.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

struct AdversarialInstance {
  RoutingProblem problem;   // the packets kept (those crossing the worst edge)
  EdgeId worst_edge = kInvalidEdge;
  std::size_t base_size = 0;        // packets in the base block-exchange
  std::int64_t modal_load = 0;      // modal-path load on the worst edge
  std::int64_t packet_distance = 0; // l: the common source-destination distance
};

// Builds Pi_A against `algorithm` with packet distance l (a power of two,
// side % 2l == 0). `samples_per_packet` > 1 estimates modal paths for
// randomized algorithms; 1 is exact for deterministic ones.
// \pre samples_per_packet >= 1 and l satisfies the block_exchange
// preconditions for dimension 0.
AdversarialInstance build_pi_a(const Mesh& mesh, const Router& algorithm,
                               std::int64_t l, Rng& rng,
                               int samples_per_packet = 1);

}  // namespace oblivious
