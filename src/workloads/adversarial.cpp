#include "workloads/adversarial.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "workloads/generators.hpp"
#include "util/check.hpp"

namespace oblivious {

namespace {

// Deterministic hash of a node sequence, used to bucket sampled paths.
std::uint64_t path_fingerprint(const Path& path) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const NodeId u : path.nodes) {
    h ^= static_cast<std::uint64_t>(u);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

AdversarialInstance build_pi_a(const Mesh& mesh, const Router& algorithm,
                               std::int64_t l, Rng& rng,
                               int samples_per_packet) {
  OBLV_REQUIRE(samples_per_packet >= 1, "need at least one sample per packet");
  const RoutingProblem base = block_exchange(mesh, l, /*dim=*/0);

  // Modal path per packet (exact for deterministic algorithms).
  std::vector<Path> modal_paths;
  modal_paths.reserve(base.size());
  for (const Demand& demand : base.demands) {
    if (algorithm.deterministic() || samples_per_packet == 1) {
      modal_paths.push_back(algorithm.route(demand.src, demand.dst, rng));
      continue;
    }
    std::unordered_map<std::uint64_t, std::pair<int, Path>> buckets;
    for (int s = 0; s < samples_per_packet; ++s) {
      Path p = algorithm.route(demand.src, demand.dst, rng);
      auto [it, inserted] = buckets.try_emplace(path_fingerprint(p), 0, Path{});
      if (inserted) it->second.second = std::move(p);
      ++it->second.first;
    }
    // A count-only argmax would let bucket order pick among tied modal
    // paths; ties go to the smallest fingerprint instead.
    // oblv-lint: allow(D002) modal-path argmax tie-broken on fingerprint
    const std::pair<const std::uint64_t, std::pair<int, Path>>* best = nullptr;
    for (const auto& bucket : buckets) {
      if (best == nullptr || bucket.second.first > best->second.first ||
          (bucket.second.first == best->second.first &&
           bucket.first < best->first)) {
        best = &bucket;
      }
    }
    modal_paths.push_back(best->second.second);
  }

  // Edge loads of the modal paths; pick the most loaded edge.
  std::unordered_map<EdgeId, std::int64_t> load;
  for (const Path& path : modal_paths) {
    for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      ++load[mesh.edge_between(path.nodes[i], path.nodes[i + 1])];
    }
  }
  OBLV_CHECK(!load.empty(), "block-exchange packets cannot all be trivial");
  EdgeId worst = kInvalidEdge;
  std::int64_t worst_load = -1;
  // oblv-lint: allow(D002) worst-edge argmax tie-broken on the edge id
  for (const auto& [edge, count] : load) {
    if (count > worst_load || (count == worst_load && edge < worst)) {
      worst = edge;
      worst_load = count;
    }
  }

  // Keep the packets whose modal path crosses the worst edge.
  AdversarialInstance out;
  out.worst_edge = worst;
  out.base_size = base.size();
  out.modal_load = worst_load;
  out.packet_distance = l;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const Path& path = modal_paths[i];
    for (std::size_t j = 0; j + 1 < path.nodes.size(); ++j) {
      if (mesh.edge_between(path.nodes[j], path.nodes[j + 1]) == worst) {
        out.problem.demands.push_back(base.demands[i]);
        break;
      }
    }
  }
  return out;
}

}  // namespace oblivious
