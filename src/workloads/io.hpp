// Plain-text serialization of routing problems, so experiments can be
// saved, diffed, and replayed (e.g. a Pi_A instance produced by the CLI).
//
// Format (one record per line, '#' comments ignored):
//
//   mesh <side0> <side1> ... [torus]
//   demand <src> <dst>
//   demand <src> <dst>
//   ...
#pragma once

#include <iosfwd>
#include <string>
#include <utility>

#include "mesh/mesh.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

std::string problem_to_text(const Mesh& mesh, const RoutingProblem& problem);
void write_problem(std::ostream& os, const Mesh& mesh,
                   const RoutingProblem& problem);

// Parses a problem; throws std::invalid_argument on malformed input.
// \pre the stream holds one mesh record followed by demand records whose
// node ids are on that mesh (unknown records and out-of-range ids throw).
std::pair<Mesh, RoutingProblem> read_problem(std::istream& is);
std::pair<Mesh, RoutingProblem> problem_from_text(const std::string& text);

}  // namespace oblivious
