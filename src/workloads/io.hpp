// Plain-text serialization of routing problems, so experiments can be
// saved, diffed, and replayed (e.g. a Pi_A instance produced by the CLI).
//
// Format (one record per line, '#' comments ignored):
//
//   mesh <side0> <side1> ... [torus]
//   demand <src> <dst>
//   demand <src> <dst>
//   ...
//
// Loaders reject malformed input with ProblemParseError, which carries
// the source name (file path or "<input>") and 1-based line of the first
// offense -- a truncated file, a non-numeric or overflowing id, trailing
// junk on a record, or an id off the declared mesh all name their line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>

#include "mesh/mesh.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

// Typed parse failure with source context. Derives from
// std::invalid_argument so pre-existing catch sites keep working; the
// what() string is "<source>:<line>: <reason>" (line 0 = whole-stream
// problems such as a missing mesh record, rendered without a number).
class ProblemParseError : public std::invalid_argument {
 public:
  ProblemParseError(std::string source, std::size_t line, const std::string& reason);

  const std::string& source() const { return source_; }
  std::size_t line() const { return line_; }

 private:
  std::string source_;
  std::size_t line_;
};

std::string problem_to_text(const Mesh& mesh, const RoutingProblem& problem);
void write_problem(std::ostream& os, const Mesh& mesh,
                   const RoutingProblem& problem);

// Parses a problem; throws ProblemParseError (an std::invalid_argument)
// on malformed input, naming `source_name` and the offending line.
// \pre the stream holds one mesh record followed by demand records whose
// node ids are on that mesh (unknown records, trailing tokens, and
// out-of-range ids throw).
std::pair<Mesh, RoutingProblem> read_problem(
    std::istream& is, const std::string& source_name = "<input>");
std::pair<Mesh, RoutingProblem> problem_from_text(const std::string& text);

// Opens and parses `path`; an unreadable file or a stream that dies
// mid-read throws ProblemParseError naming the path.
std::pair<Mesh, RoutingProblem> read_problem_file(const std::string& path);

}  // namespace oblivious
