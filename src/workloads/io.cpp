#include "workloads/io.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

namespace oblivious {

ProblemParseError::ProblemParseError(std::string source, std::size_t line,
                                     const std::string& reason)
    : std::invalid_argument(
          line > 0 ? source + ":" + std::to_string(line) + ": " + reason
                   : source + ": " + reason),
      source_(std::move(source)),
      line_(line) {}

void write_problem(std::ostream& os, const Mesh& mesh,
                   const RoutingProblem& problem) {
  os << "# oblivious-mesh-routing problem v1\n";
  os << "mesh";
  for (int d = 0; d < mesh.dim(); ++d) os << ' ' << mesh.side(d);
  if (mesh.torus()) os << " torus";
  os << '\n';
  for (const Demand& demand : problem.demands) {
    os << "demand " << demand.src << ' ' << demand.dst << '\n';
  }
}

std::string problem_to_text(const Mesh& mesh, const RoutingProblem& problem) {
  std::ostringstream os;
  write_problem(os, mesh, problem);
  return os.str();
}

namespace {

// Strict int64 token parse: the whole token must be one in-range decimal
// number. Returns nullopt on junk ("12x", "4.5", ""), bare signs, and
// values that overflow int64.
std::optional<std::int64_t> parse_int(const std::string& token) {
  if (token.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::pair<Mesh, RoutingProblem> read_problem(std::istream& is,
                                             const std::string& source_name) {
  std::optional<Mesh> mesh;
  RoutingProblem problem;
  std::string line;
  std::size_t line_number = 0;
  const auto fail = [&](const std::string& reason) {
    throw ProblemParseError(source_name, line_number, reason);
  };
  while (std::getline(is, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string kind;
    if (!(tokens >> kind)) continue;  // blank line
    if (kind == "mesh") {
      if (mesh.has_value()) fail("duplicate mesh record");
      std::vector<std::int64_t> sides;
      bool torus = false;
      std::string token;
      while (tokens >> token) {
        if (token == "torus") {
          torus = true;
          continue;
        }
        if (torus) fail("mesh sides after the torus flag");
        const std::optional<std::int64_t> side = parse_int(token);
        if (!side.has_value()) {
          fail("mesh side '" + token + "' is not a valid integer");
        }
        if (*side < 1) {
          fail("mesh side " + token + " must be >= 1");
        }
        sides.push_back(*side);
      }
      if (sides.empty()) fail("mesh record without sides");
      mesh.emplace(std::move(sides), torus);
    } else if (kind == "demand") {
      if (!mesh.has_value()) fail("demand before mesh record");
      NodeId ids[2] = {0, 0};
      std::string token;
      for (auto& id : ids) {
        if (!(tokens >> token)) {
          fail("truncated demand record (need '<src> <dst>')");
        }
        const std::optional<std::int64_t> value = parse_int(token);
        if (!value.has_value()) {
          fail("demand id '" + token + "' is not a valid integer");
        }
        if (*value < 0 || *value >= mesh->num_nodes()) {
          fail("demand id " + token + " is off the mesh (" +
               std::to_string(mesh->num_nodes()) + " nodes)");
        }
        id = *value;
      }
      if (tokens >> token) {
        fail("trailing token '" + token + "' after demand record");
      }
      problem.demands.push_back({ids[0], ids[1]});
    } else {
      fail("unknown record '" + kind + "'");
    }
  }
  if (is.bad()) {
    line_number = 0;
    fail("read failure (stream went bad mid-parse)");
  }
  if (!mesh.has_value()) {
    line_number = 0;
    fail("no mesh record found");
  }
  return {*std::move(mesh), std::move(problem)};
}

std::pair<Mesh, RoutingProblem> problem_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_problem(is);
}

std::pair<Mesh, RoutingProblem> read_problem_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ProblemParseError(path, 0, "cannot open file for reading");
  }
  return read_problem(in, path);
}

}  // namespace oblivious
