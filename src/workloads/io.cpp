#include "workloads/io.hpp"

#include <optional>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace oblivious {

void write_problem(std::ostream& os, const Mesh& mesh,
                   const RoutingProblem& problem) {
  os << "# oblivious-mesh-routing problem v1\n";
  os << "mesh";
  for (int d = 0; d < mesh.dim(); ++d) os << ' ' << mesh.side(d);
  if (mesh.torus()) os << " torus";
  os << '\n';
  for (const Demand& demand : problem.demands) {
    os << "demand " << demand.src << ' ' << demand.dst << '\n';
  }
}

std::string problem_to_text(const Mesh& mesh, const RoutingProblem& problem) {
  std::ostringstream os;
  write_problem(os, mesh, problem);
  return os.str();
}

std::pair<Mesh, RoutingProblem> read_problem(std::istream& is) {
  std::optional<Mesh> mesh;
  RoutingProblem problem;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string kind;
    if (!(tokens >> kind)) continue;  // blank line
    if (kind == "mesh") {
      OBLV_REQUIRE(!mesh.has_value(), "duplicate mesh record");
      std::vector<std::int64_t> sides;
      bool torus = false;
      std::string token;
      while (tokens >> token) {
        if (token == "torus") {
          torus = true;
          continue;
        }
        char* end = nullptr;
        const std::int64_t side = std::strtoll(token.c_str(), &end, 10);
        OBLV_REQUIRE(end != nullptr && *end == '\0' && side >= 1,
                     "bad mesh side at line " + std::to_string(line_number));
        sides.push_back(side);
      }
      OBLV_REQUIRE(!sides.empty(), "mesh record without sides");
      mesh.emplace(std::move(sides), torus);
    } else if (kind == "demand") {
      OBLV_REQUIRE(mesh.has_value(), "demand before mesh record");
      NodeId src = 0;
      NodeId dst = 0;
      OBLV_REQUIRE(static_cast<bool>(tokens >> src >> dst),
                   "bad demand at line " + std::to_string(line_number));
      OBLV_REQUIRE(src >= 0 && src < mesh->num_nodes() && dst >= 0 &&
                       dst < mesh->num_nodes(),
                   "demand endpoint off the mesh at line " +
                       std::to_string(line_number));
      problem.demands.push_back({src, dst});
    } else {
      OBLV_REQUIRE(false, "unknown record '" + kind + "' at line " +
                              std::to_string(line_number));
    }
  }
  OBLV_REQUIRE(mesh.has_value(), "no mesh record found");
  return {*std::move(mesh), std::move(problem)};
}

std::pair<Mesh, RoutingProblem> problem_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_problem(is);
}

}  // namespace oblivious
