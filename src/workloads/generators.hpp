// Routing-problem generators.
//
// These are the standard hard permutations for mesh routing (transpose,
// bit-reversal, tornado), locality-controlled workloads (nearest neighbor,
// distance-l pairs), the hot-spot pattern, and the structured
// block-exchange permutation from the Section 5.1 lower-bound
// construction, in which every packet travels exactly distance l.
#pragma once

#include <cstdint>

#include "mesh/mesh.hpp"
#include "rng/rng.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

// A uniformly random permutation of all nodes (fixed points kept; they
// route as zero-length paths).
RoutingProblem random_permutation(const Mesh& mesh, Rng& rng);

// (x, y, ...) -> (y, x, ...): the classic transpose permutation that
// overloads deterministic dimension-order routing along the diagonal.
// \pre mesh.dim() >= 2 and side(0) == side(1) (swaps dimensions 0 and 1).
RoutingProblem transpose(const Mesh& mesh);

// Every coordinate's bits reversed.
// \pre every mesh side is a power of two.
RoutingProblem bit_reversal(const Mesh& mesh);

// Tornado: shift by side/2 - 1 along dimension 0 (classic torus adversary;
// well-defined on the mesh as the same modular permutation).
RoutingProblem tornado(const Mesh& mesh);

// `num_sources` distinct random sources all sending to one random sink.
// \pre num_sources <= mesh.num_nodes().
RoutingProblem hotspot(const Mesh& mesh, Rng& rng, std::size_t num_sources);

// Every node sends to a uniformly random neighbor.
RoutingProblem nearest_neighbor(const Mesh& mesh, Rng& rng);

// `count` random source/destination pairs at exactly distance `dist`
// (sources may repeat).
// \pre 0 <= dist <= mesh.diameter().
RoutingProblem random_pairs_at_distance(const Mesh& mesh, Rng& rng,
                                        std::size_t count, std::int64_t dist);

// The Section 5.1 construction: partition the mesh into slabs of thickness
// l along `dim` and exchange adjacent slabs node-for-node. A permutation
// in which every packet travels exactly distance l.
// \pre 0 <= dim < mesh.dim(), l >= 1 and side(dim) % (2 l) == 0.
RoutingProblem block_exchange(const Mesh& mesh, std::int64_t l, int dim = 0);

// Adjacent pairs straddling the top-level bisector of dimension `dim`:
// (side/2 - 1, y, ...) <-> (side/2, y, ...), both directions. These have
// distance 1 but their deepest common *type-1* ancestor is the root, which
// is exactly the access-tree worst case (experiment E9).
RoutingProblem cut_straddlers(const Mesh& mesh, int dim = 0);

}  // namespace oblivious
