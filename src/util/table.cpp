#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace oblivious {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OBLV_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  OBLV_CHECK(rows_.empty() || rows_.back().size() == headers_.size(),
             "previous row incomplete");
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  OBLV_REQUIRE(!rows_.empty(), "call row() before add()");
  OBLV_REQUIRE(rows_.back().size() < headers_.size(), "row already full");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace oblivious
