#include "util/flags.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace oblivious {

Flags Flags::parse(int argc, const char* const* argv,
                   const std::vector<std::string>& known) {
  Flags flags;
  if (argc > 0) flags.program_ = argv[0];
  const auto is_known = [&known](const std::string& name) {
    return known.empty() || std::find(known.begin(), known.end(), name) != known.end();
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // boolean flag
    }
    OBLV_REQUIRE(!name.empty(), "empty flag name");
    OBLV_REQUIRE(is_known(name), "unknown flag --" + name);
    flags.values_[name] = value;
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  OBLV_REQUIRE(end != nullptr && *end == '\0', "flag --" + name + " is not an integer");
  return v;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  OBLV_REQUIRE(end != nullptr && *end == '\0', "flag --" + name + " is not a number");
  return v;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  OBLV_REQUIRE(false, "flag --" + name + " is not a boolean");
  return fallback;
}

}  // namespace oblivious
