// Compile-time lock discipline: Clang Thread Safety Analysis macros and
// the annotated synchronization primitives every lock-holding subsystem
// uses (DESIGN.md section 13).
//
// The paper's determinism contracts (bit-identical output for any
// thread count; the Thm 3.4/4.2 invariants the contracts layer checks)
// make an unguarded cross-thread access a silent reproducibility bug,
// not just a crash. Clang's -Wthread-safety rejects that class of bug
// at compile time: a field declared OBLV_GUARDED_BY(mu) cannot be read
// or written unless the compiler can prove mu is held, and a function
// declared OBLV_REQUIRES(mu) cannot be called without it. On gcc (and
// any compiler without the attributes) every macro expands to nothing
// and the wrappers are transparent zero-cost shims over the std types.
//
// Usage rules, enforced three ways:
//  - clang builds compile with -Wthread-safety -Wthread-safety-beta
//    -Werror=thread-safety-analysis (CMakeLists adds the flags for
//    every Clang build; the CI static-analysis job has a dedicated leg);
//  - tests/thread_safety_compile_test proves the gate is live: fixture
//    violations (unguarded field, missing REQUIRES, ACQUIRED_BEFORE
//    inversion) must FAIL to compile, a positive control must succeed;
//  - lint rule D008 flags naked std::mutex / std::lock_guard /
//    std::condition_variable declarations anywhere in src/ outside this
//    header, so new code cannot bypass the annotated wrappers.
//
// [[clang::no_thread_safety_analysis]] escapes are banned outside this
// header (acceptance-checked); the wrapper internals below are the only
// sanctioned place where the analysis is stepped around, and each site
// says why.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// --- Attribute macros -------------------------------------------------------
//
// The canonical Clang Thread Safety Analysis spellings (the same set
// abseil and LLVM ship). No-ops on compilers without the attributes.

#if defined(__clang__) && !defined(SWIG)
#define OBLV_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define OBLV_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off clang
#endif

// A type that models a capability (a lock). `x` names the capability
// kind in diagnostics ("mutex", "shared_mutex").
#define OBLV_CAPABILITY(x) OBLV_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

// An RAII type that acquires a capability at construction and releases
// it at destruction (std::lock_guard shape).
#define OBLV_SCOPED_CAPABILITY \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

// Data member readable/writable only with the capability held (shared
// hold permits reads, exclusive hold permits writes).
#define OBLV_GUARDED_BY(x) OBLV_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

// Pointer member whose *pointee* is guarded by the capability.
#define OBLV_PT_GUARDED_BY(x) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

// Lock-ordering declarations: acquiring this capability while holding
// one that must come after it is a -Wthread-safety-beta error. This is
// the static deadlock gate; the negative-compile harness proves the
// inversion fixture fails to build.
#define OBLV_ACQUIRED_BEFORE(...) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define OBLV_ACQUIRED_AFTER(...) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

// The caller must hold the capability (exclusively / shared) to call.
#define OBLV_REQUIRES(...) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define OBLV_REQUIRES_SHARED(...) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

// The function acquires / releases the capability itself.
#define OBLV_ACQUIRE(...) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define OBLV_ACQUIRE_SHARED(...) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define OBLV_RELEASE(...) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define OBLV_RELEASE_SHARED(...) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
// Releases whichever mode (exclusive or shared) is held; the right
// spelling for a scoped wrapper's destructor.
#define OBLV_RELEASE_GENERIC(...) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

// The function tries to acquire and reports success as `ret`.
#define OBLV_TRY_ACQUIRE(...) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

// The caller must NOT hold the capability (re-entrancy / self-deadlock
// gate on public entry points that lock internally).
#define OBLV_EXCLUDES(...) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (for code the analysis
// cannot follow, e.g. a lock taken by a caller across an ABI boundary).
#define OBLV_ASSERT_CAPABILITY(x) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

// The function returns a reference to the given capability.
#define OBLV_RETURN_CAPABILITY(x) \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// Escape hatch. Banned outside this header and the wrapper internals;
// every use must carry a written justification.
#define OBLV_NO_THREAD_SAFETY_ANALYSIS \
  OBLV_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

// --- Annotated primitives ---------------------------------------------------

namespace oblv {

class CondVar;

// std::mutex carrying the "mutex" capability. Thin inline shim: lock()
// and unlock() compile to the underlying std::mutex calls.
class OBLV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OBLV_ACQUIRE() { mu_.lock(); }
  void unlock() OBLV_RELEASE() { mu_.unlock(); }
  bool try_lock() OBLV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // CondVar::wait adopts the raw handle to run the atomic
  // unlock-block-relock protocol std::condition_variable requires.
  friend class CondVar;
  std::mutex mu_;
};

// std::shared_mutex carrying the "shared_mutex" capability: exclusive
// for writers (lock), shared for readers (lock_shared).
class OBLV_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() OBLV_ACQUIRE() { mu_.lock(); }
  void unlock() OBLV_RELEASE() { mu_.unlock(); }
  void lock_shared() OBLV_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() OBLV_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive hold of a Mutex (std::lock_guard shape).
class OBLV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OBLV_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() OBLV_RELEASE_GENERIC() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Scoped exclusive (writer) hold of a SharedMutex.
class OBLV_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) OBLV_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() OBLV_RELEASE_GENERIC() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Scoped shared (reader) hold of a SharedMutex.
class OBLV_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) OBLV_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() OBLV_RELEASE_GENERIC() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to oblv::Mutex. wait() is annotated
// OBLV_REQUIRES(mu): the analysis checks the caller holds the lock; the
// momentary release inside the wait protocol is invisible to it, which
// matches the caller-observable contract (the lock is held again when
// wait returns). Callers re-check their predicate in a while loop --
// clang-tidy's bugprone-spuriously-wake-up-functions enforces this.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // \pre the calling thread holds `mu`.
  void wait(Mutex& mu) OBLV_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the wait protocol, then
    // release the unique_lock's ownership claim so the caller's scoped
    // hold stays the one true owner.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace oblv
