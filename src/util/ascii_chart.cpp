#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace oblivious {

AsciiChart::AsciiChart(std::vector<std::string> x_labels, int height)
    : x_labels_(std::move(x_labels)), height_(height) {
  OBLV_REQUIRE(!x_labels_.empty(), "chart needs x positions");
  OBLV_REQUIRE(height_ >= 2, "chart needs at least two rows");
}

void AsciiChart::add_series(ChartSeries series) {
  OBLV_REQUIRE(series.ys.size() == x_labels_.size(),
               "series length must match the x positions");
  series_.push_back(std::move(series));
}

std::string AsciiChart::render() const {
  OBLV_REQUIRE(!series_.empty(), "chart needs at least one series");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const ChartSeries& s : series_) {
    for (const double y : s.ys) {
      if (std::isnan(y)) continue;
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
  }
  OBLV_REQUIRE(lo <= hi, "chart needs at least one finite value");
  if (hi == lo) hi = lo + 1.0;

  const int columns_per_x = 6;
  const int width = static_cast<int>(x_labels_.size()) * columns_per_x;
  std::vector<std::string> canvas(static_cast<std::size_t>(height_),
                                  std::string(static_cast<std::size_t>(width), ' '));
  const auto row_of = [&](double y) {
    const double frac = (y - lo) / (hi - lo);
    const int r =
        height_ - 1 - static_cast<int>(std::lround(frac * (height_ - 1)));
    return std::clamp(r, 0, height_ - 1);
  };
  for (const ChartSeries& s : series_) {
    for (std::size_t i = 0; i < s.ys.size(); ++i) {
      if (std::isnan(s.ys[i])) continue;
      const int col = static_cast<int>(i) * columns_per_x + columns_per_x / 2;
      canvas[static_cast<std::size_t>(row_of(s.ys[i]))]
            [static_cast<std::size_t>(col)] = s.marker;
    }
  }

  std::ostringstream os;
  for (int r = 0; r < height_; ++r) {
    const double value = hi - (hi - lo) * r / (height_ - 1);
    os << std::setw(9) << std::fixed << std::setprecision(1) << value << " |"
       << canvas[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(9, ' ') << " +" << std::string(static_cast<std::size_t>(width), '-')
     << '\n';
  os << std::string(11, ' ');
  for (const std::string& label : x_labels_) {
    std::string cell = label.substr(0, static_cast<std::size_t>(columns_per_x - 1));
    cell.resize(static_cast<std::size_t>(columns_per_x), ' ');
    os << cell;
  }
  os << '\n';
  for (const ChartSeries& s : series_) {
    os << std::string(11, ' ') << s.marker << " = " << s.name << '\n';
  }
  return os.str();
}

}  // namespace oblivious
