// Streaming statistics and integer histograms used by the analysis layer
// and the benchmark harnesses.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace oblivious {

// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram over small non-negative integer values (e.g. bridge heights,
// edge loads). Bins grow on demand.
class IntHistogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1) {
    OBLV_REQUIRE(value >= 0, "IntHistogram takes non-negative values");
    const auto idx = static_cast<std::size_t>(value);
    if (idx >= bins_.size()) bins_.resize(idx + 1, 0);
    bins_[idx] += weight;
    total_ += weight;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::int64_t value) const {
    const auto idx = static_cast<std::size_t>(value);
    return (value >= 0 && idx < bins_.size()) ? bins_[idx] : 0;
  }
  std::int64_t max_value() const {
    for (std::size_t i = bins_.size(); i-- > 0;) {
      if (bins_[i] > 0) return static_cast<std::int64_t>(i);
    }
    return -1;
  }
  std::size_t num_bins() const { return bins_.size(); }

  // Smallest v such that at least `q` fraction of the mass is <= v.
  std::int64_t quantile(double q) const {
    OBLV_REQUIRE(q >= 0.0 && q <= 1.0, "quantile in [0,1]");
    if (total_ == 0) return -1;
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      cum += static_cast<double>(bins_[i]);
      if (cum >= target) return static_cast<std::int64_t>(i);
    }
    return max_value();
  }

  double mean() const {
    if (total_ == 0) return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      sum += static_cast<double>(i) * static_cast<double>(bins_[i]);
    }
    return sum / static_cast<double>(total_);
  }

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace oblivious
