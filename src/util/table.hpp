// Minimal table formatter for the experiment harnesses: collects rows of
// strings/numbers and renders an aligned ASCII table (and CSV).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace oblivious {

class Table {
 public:
  // \pre headers is non-empty.
  explicit Table(std::vector<std::string> headers);

  // Starts a new row; subsequent add() calls fill it left to right.
  // \pre add() is only called after row(), at most once per column.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(double value, int precision = 3);
  Table& add(std::int64_t value);
  Table& add(std::uint64_t value);
  Table& add(int value);

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::string>& row_at(std::size_t i) const { return rows_.at(i); }

  std::string to_string() const;
  std::string to_csv() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oblivious
