// Tiered contract macros layered on top of check.hpp.
//
// Tier table (see DESIGN.md section 7):
//   OBLV_REQUIRE      - caller errors on cold API paths; always on
//                       (check.hpp) -> std::invalid_argument
//   OBLV_CHECK        - internal invariants on cold paths; always on
//                       (check.hpp) -> std::logic_error
//   OBLV_EXPECTS      - API preconditions, may be O(input); compiled in
//                       for Debug builds or -DOBLV_CONTRACTS=ON Release
//                       builds, compiled out otherwise -> ContractViolation
//   OBLV_ENSURES      - API postconditions, same gating as OBLV_EXPECTS
//   OBLV_DCHECK       - hot-loop asserts; Debug (NDEBUG undefined) only
//
// When compiled out, the checked expression is parsed (sizeof in an
// unevaluated context, so bitrot is still a compile error) but never
// evaluated: a default Release build pays zero cycles.
//
// Gating: CMake defines OBLV_CONTRACTS_ENABLED globally. A translation
// unit may override the build-wide setting by defining
// OBLV_CONTRACTS_FORCE to 0 or 1 before including this header (used by
// contracts_test to prove both behaviours in one binary).
#pragma once

#include <stdexcept>

#include "util/check.hpp"

namespace oblivious {

// Thrown on OBLV_EXPECTS / OBLV_ENSURES violations. Distinct from the
// check.hpp exceptions so tests (and callers that want to survive a
// contract-checked Release build) can catch contract failures precisely.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_contract(const char* kind, const char* expr,
                                        const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace oblivious

#if defined(OBLV_CONTRACTS_FORCE)
#define OBLV_CONTRACTS_ACTIVE OBLV_CONTRACTS_FORCE
#elif defined(OBLV_CONTRACTS_ENABLED)
#define OBLV_CONTRACTS_ACTIVE OBLV_CONTRACTS_ENABLED
#elif !defined(NDEBUG)
#define OBLV_CONTRACTS_ACTIVE 1
#else
#define OBLV_CONTRACTS_ACTIVE 0
#endif

// Parses but never evaluates `expr`; keeps variables referenced only by
// contracts "used" so compiled-out builds stay warning-clean.
#define OBLV_CONTRACT_UNUSED(expr) \
  do {                             \
    (void)sizeof((expr) ? 1 : 0); \
  } while (0)

#if OBLV_CONTRACTS_ACTIVE

#define OBLV_EXPECTS(expr, msg)                                            \
  do {                                                                     \
    if (!(expr))                                                           \
      ::oblivious::detail::throw_contract("precondition", #expr, __FILE__, \
                                          __LINE__, (msg));                \
  } while (0)

#define OBLV_ENSURES(expr, msg)                                             \
  do {                                                                      \
    if (!(expr))                                                            \
      ::oblivious::detail::throw_contract("postcondition", #expr, __FILE__, \
                                          __LINE__, (msg));                 \
  } while (0)

#else

#define OBLV_EXPECTS(expr, msg) OBLV_CONTRACT_UNUSED(expr)
#define OBLV_ENSURES(expr, msg) OBLV_CONTRACT_UNUSED(expr)

#endif  // OBLV_CONTRACTS_ACTIVE

// Hot-loop debug assert: follows NDEBUG like assert(), not the contracts
// switch, so -DOBLV_CONTRACTS=ON Release builds keep their inner loops
// branch-free.
#if !defined(NDEBUG)
#define OBLV_DCHECK(expr, msg)                                           \
  do {                                                                   \
    if (!(expr))                                                         \
      ::oblivious::detail::throw_contract("debug invariant", #expr,      \
                                          __FILE__, __LINE__, (msg));    \
  } while (0)
#else
#define OBLV_DCHECK(expr, msg) OBLV_CONTRACT_UNUSED(expr)
#endif
