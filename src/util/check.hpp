// Error-checking macros used across the library.
//
// OBLV_REQUIRE      - precondition violations (caller error) -> std::invalid_argument
// OBLV_CHECK        - internal invariant violations (library bug) -> std::logic_error
// OBLV_UNREACHABLE  - marks code that must never execute -> std::logic_error
//
// All are always on; the checked expressions in this library are O(1) and
// never on inner loops where they would matter.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace oblivious::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::logic_error(os.str());
}

}  // namespace oblivious::detail

#define OBLV_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) ::oblivious::detail::throw_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define OBLV_CHECK(expr, msg)                                                \
  do {                                                                       \
    if (!(expr)) ::oblivious::detail::throw_check(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

// Unconditional call into a [[noreturn]] function, so the compiler knows the
// enclosing path ends here (OBLV_CHECK(false, ...) hides that at -O0 and
// trips -Wreturn-type under -Werror).
#define OBLV_UNREACHABLE(msg) \
  ::oblivious::detail::throw_check("unreachable", __FILE__, __LINE__, (msg))
