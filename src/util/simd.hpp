// Configure-time and runtime gates for the SIMD fast paths.
//
// Policy (DESIGN.md section 10): every vectorized kernel in the library is
// pure integer arithmetic with a portable scalar twin, so the dispatch
// below selects *speed only* -- results are bit-identical either way.
// Three switches compose:
//   * configure time: -DOBLV_SIMD=OFF compiles the scalar bodies only
//     (OBLV_SIMD_ENABLED undefined);
//   * runtime, CPU: the AVX2 kernels are compiled with
//     __attribute__((target("avx2"))) and only selected when
//     __builtin_cpu_supports("avx2") says the host can run them;
//   * runtime, operator: OBLV_SIMD=0 / off / false in the environment
//     forces the scalar twins even on capable hardware (A/B determinism
//     checks, perf triage).
#pragma once

#include <cstdlib>
#include <cstring>

namespace oblivious {

#if defined(OBLV_SIMD_ENABLED) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define OBLV_SIMD_X86_DISPATCH 1
#else
#define OBLV_SIMD_X86_DISPATCH 0
#endif

// `omp simd` on the following loop when the SIMD build is on (the build
// adds -fopenmp-simd alongside OBLV_SIMD_ENABLED); expands to nothing in
// -DOBLV_SIMD=OFF builds, where the bare pragma would trip
// -Wunknown-pragmas under -Werror.
#if defined(OBLV_SIMD_ENABLED)
#define OBLV_PRAGMA_SIMD _Pragma("omp simd")
#else
#define OBLV_PRAGMA_SIMD
#endif

// True when the environment does NOT veto SIMD (OBLV_SIMD=0/off/false).
// Read once per process; the scalar twins are always safe, so a bogus
// value simply leaves SIMD on.
inline bool simd_env_allowed() {
  static const bool allowed = [] {
    const char* v = std::getenv("OBLV_SIMD");
    if (v == nullptr) return true;
    return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
             std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0);
  }();
  return allowed;
}

// True when the AVX2 kernels should be used: compiled in, host support,
// and no environment veto.
inline bool simd_avx2_enabled() {
#if OBLV_SIMD_X86_DISPATCH
  static const bool enabled = __builtin_cpu_supports("avx2") != 0;
  return enabled && simd_env_allowed();
#else
  return false;
#endif
}

}  // namespace oblivious
