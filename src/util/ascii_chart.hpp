// Minimal ASCII line/scatter chart for the experiment harnesses, so the
// "figures" of EXPERIMENTS.md render directly in the bench output.
#pragma once

#include <string>
#include <vector>

namespace oblivious {

struct ChartSeries {
  std::string name;
  std::vector<double> ys;  // one value per shared x position
  char marker = '*';
};

class AsciiChart {
 public:
  // `x_labels` supplies the tick labels of the shared x positions.
  // \pre x_labels is non-empty and height >= 2.
  AsciiChart(std::vector<std::string> x_labels, int height = 12);

  // \pre series.ys has one value per x label.
  void add_series(ChartSeries series);

  // Renders all series on a shared y axis (linear scale; NaNs skipped).
  std::string render() const;

 private:
  std::vector<std::string> x_labels_;
  std::vector<ChartSeries> series_;
  int height_;
};

}  // namespace oblivious
