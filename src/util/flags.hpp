// A minimal command-line flag parser for the CLI tools.
//
// Supports --name value, --name=value, and boolean --name. Unknown flags
// are an error; positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace oblivious {

class Flags {
 public:
  // Parses argv; throws std::invalid_argument on malformed input or, when
  // `known` is non-empty, on flags outside `known`.
  // \pre every --name argument appears in `known`; rejects unknown flags.
  static Flags parse(int argc, const char* const* argv,
                     const std::vector<std::string>& known = {});

  bool has(const std::string& name) const;
  // Value accessors; `fallback` is returned when the flag is absent.
  std::string get(const std::string& name, const std::string& fallback) const;
  // \pre when present, the flag's value parses as the requested type.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace oblivious
