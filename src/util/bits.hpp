// Bit-twiddling helpers shared by the mesh/decomposition arithmetic.
#pragma once

#include <bit>
#include <cstdint>

#include "util/check.hpp"

namespace oblivious {

// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) {
  OBLV_REQUIRE(x >= 1, "floor_log2 needs x >= 1");
  return 63 - std::countl_zero(x);
}

// ceil(log2(x)) for x >= 1 (0 for x == 1).
constexpr int ceil_log2(std::uint64_t x) {
  OBLV_REQUIRE(x >= 1, "ceil_log2 needs x >= 1");
  return (x == 1) ? 0 : 64 - std::countl_zero(x - 1);
}

constexpr bool is_power_of_two(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

// Mathematical floor division (rounds toward -infinity) for signed ints.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  OBLV_REQUIRE(b > 0, "floor_div needs positive divisor");
  std::int64_t q = a / b;
  if ((a % b) != 0 && a < 0) --q;
  return q;
}

// Mathematical modulus with result in [0, b).
constexpr std::int64_t pos_mod(std::int64_t a, std::int64_t b) {
  OBLV_REQUIRE(b > 0, "pos_mod needs positive modulus");
  std::int64_t r = a % b;
  if (r < 0) r += b;
  return r;
}

}  // namespace oblivious
