// A small vector with inline storage, used for mesh coordinates.
//
// Mesh dimension d is tiny (1..8 in every experiment), so coordinates are
// hot, short, and allocated by the million while building paths. SmallVec
// keeps up to `N` elements inline and only spills to the heap beyond that,
// so coordinate math never touches the allocator in practice.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.hpp"

namespace oblivious {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is designed for trivially copyable element types");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;

  explicit SmallVec(std::size_t count, const T& value = T{}) {
    resize(count, value);
  }

  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVec(const SmallVec& other) { assign_from(other); }

  SmallVec(SmallVec&& other) noexcept { move_from(std::move(other)); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear_storage();
      assign_from(other);
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear_storage();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVec() { clear_storage(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  bool is_inline() const { return data_ == inline_data(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T& at(std::size_t i) {
    OBLV_REQUIRE(i < size_, "SmallVec index out of range");
    return data_[i];
  }
  const T& at(std::size_t i) const {
    OBLV_REQUIRE(i < size_, "SmallVec index out of range");
    return data_[i];
  }

  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  const_iterator cbegin() const { return data_; }
  const_iterator cend() const { return data_ + size_; }

  void push_back(const T& value) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data_[size_++] = value;
  }

  void pop_back() {
    OBLV_REQUIRE(size_ > 0, "pop_back on empty SmallVec");
    --size_;
  }

  void clear() { size_ = 0; }

  // Replaces the contents with [src, src + count) in one bulk copy --
  // cheaper than clear() + repeated push_back when the caller has staged
  // the elements elsewhere (e.g. the SoA engine's segment scratch).
  void assign(const T* src, std::size_t count) {
    if (count > capacity_) grow(count);
    std::copy(src, src + count, data_);
    size_ = count;
  }

  void resize(std::size_t count, const T& value = T{}) {
    if (count > capacity_) grow(count);
    for (std::size_t i = size_; i < count; ++i) data_[i] = value;
    size_ = count;
  }

  void reserve(std::size_t count) {
    if (count > capacity_) grow(count);
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) { return !(a == b); }

 private:
  const T* inline_data() const { return reinterpret_cast<const T*>(inline_storage_); }
  T* inline_data() { return reinterpret_cast<T*>(inline_storage_); }

  void grow(std::size_t min_capacity) {
    const std::size_t new_capacity = std::max<std::size_t>(min_capacity, capacity_ * 2);
    T* heap = new T[new_capacity];
    std::copy(data_, data_ + size_, heap);
    if (!is_inline()) delete[] data_;
    data_ = heap;
    capacity_ = new_capacity;
  }

  void clear_storage() {
    if (!is_inline()) delete[] data_;
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
  }

  void assign_from(const SmallVec& other) {
    reserve(other.size_);
    std::copy(other.data_, other.data_ + other.size_, data_);
    size_ = other.size_;
  }

  void move_from(SmallVec&& other) noexcept {
    if (other.is_inline()) {
      std::copy(other.data_, other.data_ + other.size_, inline_data());
      data_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  alignas(T) std::byte inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace oblivious
