// Offline (non-oblivious) congestion minimization, the comparator class
// the paper measures its competitive ratio against.
//
// The paper argues (Section 1, Related Work [1, 2, 12, 13]) that offline
// algorithms with full knowledge of the traffic achieve near-optimal
// C + D but "do not scale" -- and that on the mesh, oblivious routing is
// within a logarithmic factor of their performance. To measure that gap
// we implement best-response dynamics in the congestion game whose
// potential is sum_e load(e)^2: packets repeatedly switch to a candidate
// shortest path minimizing the marginal congestion cost
// sum_e (2 load(e) + 1). The potential strictly decreases with every
// switch, so the dynamics converge to a pure Nash equilibrium whose
// max-load is a strong offline upper-bound estimate of C*.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/path.hpp"
#include "workloads/problem.hpp"

namespace oblivious {

struct OfflineOptions {
  int max_rounds = 32;            // full best-response sweeps
  int candidates_per_packet = 8;  // sampled alternative shortest paths
  std::uint64_t seed = 1;
};

struct OfflineResult {
  std::vector<Path> paths;
  std::int64_t congestion = 0;  // max edge load at termination
  int rounds = 0;               // sweeps executed
  bool converged = false;       // no packet moved in the last sweep
  std::int64_t total_switches = 0;
};

// \pre options.max_rounds >= 1 and options.candidates_per_packet >= 1.
// Routes `problem` offline. All paths are shortest paths (stretch 1);
// the returned congestion is an upper bound on C* and usually very close
// to the boundary lower bound.
OfflineResult offline_route(const Mesh& mesh, const RoutingProblem& problem,
                            const OfflineOptions& options = {});

}  // namespace oblivious
