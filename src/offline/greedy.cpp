#include "offline/greedy.hpp"

#include <algorithm>

#include "routing/staircase.hpp"
#include "util/check.hpp"

namespace oblivious {

namespace {

// Edge ids of a path (paths here are short; recomputing is cheap enough).
std::vector<EdgeId> edges_of(const Mesh& mesh, const Path& path) {
  std::vector<EdgeId> edges;
  edges.reserve(static_cast<std::size_t>(path.length()));
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    edges.push_back(mesh.edge_between(path.nodes[i], path.nodes[i + 1]));
  }
  return edges;
}

}  // namespace

OfflineResult offline_route(const Mesh& mesh, const RoutingProblem& problem,
                            const OfflineOptions& options) {
  OBLV_REQUIRE(options.max_rounds >= 1, "need at least one round");
  OBLV_REQUIRE(options.candidates_per_packet >= 1, "need candidates");

  const RandomStaircaseRouter sampler(mesh);
  Rng rng(options.seed);

  OfflineResult result;
  result.paths.reserve(problem.size());
  std::vector<std::vector<EdgeId>> path_edges(problem.size());
  std::vector<std::int64_t> load(static_cast<std::size_t>(mesh.num_edges()), 0);

  // Initial assignment: independent random staircase paths.
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const Demand& demand = problem.demands[i];
    result.paths.push_back(sampler.route(demand.src, demand.dst, rng));
    path_edges[i] = edges_of(mesh, result.paths[i]);
    for (const EdgeId e : path_edges[i]) ++load[static_cast<std::size_t>(e)];
  }

  // Best-response sweeps: each packet switches to the cheapest candidate
  // under the marginal potential cost sum (2 load + 1). The potential
  // sum_e load^2 strictly decreases on every switch, so this terminates.
  const auto marginal_cost = [&](const std::vector<EdgeId>& edges) {
    std::int64_t cost = 0;
    for (const EdgeId e : edges) {
      cost += 2 * load[static_cast<std::size_t>(e)] + 1;
    }
    return cost;
  };

  for (result.rounds = 0; result.rounds < options.max_rounds; ++result.rounds) {
    bool any_switch = false;
    for (std::size_t i = 0; i < problem.size(); ++i) {
      const Demand& demand = problem.demands[i];
      if (demand.src == demand.dst) continue;
      // Remove this packet's contribution, then compare candidates.
      for (const EdgeId e : path_edges[i]) --load[static_cast<std::size_t>(e)];
      std::int64_t best_cost = marginal_cost(path_edges[i]);
      Path best_path;  // empty: keep current
      std::vector<EdgeId> best_edges;
      for (int c = 0; c < options.candidates_per_packet; ++c) {
        Path candidate = sampler.route(demand.src, demand.dst, rng);
        std::vector<EdgeId> candidate_edges = edges_of(mesh, candidate);
        const std::int64_t cost = marginal_cost(candidate_edges);
        if (cost < best_cost) {
          best_cost = cost;
          best_path = std::move(candidate);
          best_edges = std::move(candidate_edges);
        }
      }
      if (!best_path.nodes.empty()) {
        result.paths[i] = std::move(best_path);
        path_edges[i] = std::move(best_edges);
        ++result.total_switches;
        any_switch = true;
      }
      for (const EdgeId e : path_edges[i]) ++load[static_cast<std::size_t>(e)];
    }
    if (!any_switch) {
      result.converged = true;
      ++result.rounds;
      break;
    }
  }

  result.congestion =
      load.empty() ? 0 : *std::max_element(load.begin(), load.end());
  return result;
}

}  // namespace oblivious
