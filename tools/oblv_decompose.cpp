// oblv_decompose -- inspect the hierarchical mesh decomposition.
//
// Renders the type-1 / shifted families of a level (Figures 1-2 of the
// paper), lists the per-level structure, and answers bridge queries for a
// given pair of nodes.
//
// Examples:
//   oblv_decompose --mesh 16x16 --render --level 2
//   oblv_decompose --mesh 64x64 --pair 10,10:54,33
//   oblv_decompose --mesh 16x16x16 --section4 --summary
#include <iostream>
#include <sstream>

#include "decomposition/decomposition.hpp"
#include "decomposition/render.hpp"
#include "routing/hierarchical.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace oblivious;

constexpr const char* kUsage = R"(usage: oblv_decompose [flags]
  --mesh WxHx...   square power-of-two mesh (default 16x16)
  --torus          wrap-around topology
  --section4       use the d-dimensional type-j decomposition (default:
                   Section 3 diagonal decomposition)
  --summary        per-level table: side, lambda, families, counts
  --render         ASCII-render the families (with --level N, default 1)
  --level N        level to render
  --pair X,Y:U,V   report the bridge for a node pair (2D coordinates)
  --help           this text
)";

Mesh parse_mesh(const std::string& spec, bool torus) {
  std::vector<std::int64_t> sides;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, 'x')) sides.push_back(std::stoll(part));
  return Mesh(std::move(sides), torus);
}

Coord parse_coord(const std::string& spec, int dim) {
  Coord c;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ',')) c.push_back(std::stoll(part));
  OBLV_REQUIRE(static_cast<int>(c.size()) == dim, "coordinate/mesh dim mismatch");
  return c;
}

int run(const Flags& flags) {
  if (flags.get_bool("help")) {
    std::cout << kUsage;
    return 0;
  }
  const Mesh mesh =
      parse_mesh(flags.get("mesh", "16x16"), flags.get_bool("torus"));
  const Decomposition dec = flags.get_bool("section4")
                                ? Decomposition::section4(mesh)
                                : Decomposition::section3(mesh);
  std::cout << "network: " << mesh.describe() << ", "
            << (flags.get_bool("section4") ? "Section 4 type-j"
                                           : "Section 3 diagonal")
            << " decomposition, " << dec.leaf_level() + 1 << " levels\n";

  if (flags.get_bool("summary") || (!flags.get_bool("render") && !flags.has("pair"))) {
    Table table({"level", "side", "lambda", "families", "submeshes"});
    for (int level = 0; level <= dec.leaf_level(); ++level) {
      table.row()
          .add(level)
          .add(dec.side_at(level))
          .add(dec.shift_lambda(level))
          .add(dec.num_types(level))
          .add(dec.count_submeshes(level));
    }
    table.print(std::cout);
  }

  if (flags.get_bool("render")) {
    const int level = static_cast<int>(flags.get_int("level", 1));
    std::cout << render_level(dec, level);
  }

  if (flags.has("pair")) {
    const std::string spec = flags.get("pair", "");
    const std::size_t colon = spec.find(':');
    OBLV_REQUIRE(colon != std::string::npos, "--pair wants X,Y:U,V");
    const Coord s = parse_coord(spec.substr(0, colon), mesh.dim());
    const Coord t = parse_coord(spec.substr(colon + 1), mesh.dim());
    std::cout << "dist = " << mesh.distance(s, t) << "\n";
    const RegularSubmesh dca = dec.deepest_common(s, t, true);
    std::cout << "deepest common regular submesh: " << dca.describe()
              << " (height " << dec.height_of(dca.level) << ")\n";
    const RegularSubmesh tree_dca = dec.deepest_common(s, t, false);
    std::cout << "deepest common type-1 (access tree): " << tree_dca.describe()
              << " (height " << dec.height_of(tree_dca.level) << ")\n";
    if (mesh.is_square() && mesh.sides_power_of_two()) {
      const NdRouter router(mesh);
      const RegularSubmesh bridge =
          router.bridge_for(mesh.node_id(s), mesh.node_id(t));
      std::cout << "Section 4 prescribed bridge: " << bridge.describe() << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Flags::parse(argc, argv,
                            {"mesh", "torus", "section4", "summary", "render",
                             "level", "pair", "help"}));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << kUsage;
    return 1;
  }
}
