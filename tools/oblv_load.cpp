// oblv_load -- open-loop load generator for oblvd.
//
// Each tenant emits route requests on a Poisson schedule (seeded
// exponential inter-arrival gaps, so a run is reproducible) across a
// small pool of connections. Service latency is measured against the
// *scheduled* arrival, not the send time, so queueing delay inside the
// generator counts against the daemon -- the open-loop convention.
// Rejected requests (backpressure) are retried per --retries with the
// client's capped seeded backoff, or counted and dropped at --retries 0.
// Requests can carry a v2 deadline (--deadline-ms); the daemon sheds
// expired work as kExpired, counted separately from rejections.
//
// Examples:
//   oblv_load --socket /tmp/oblvd.sock --mesh 64x64
//             --tenants light:200:16,greedy:2000:256 --duration-ms 3000
//   oblv_load --tcp-port 7447 --mesh 64x64 --tenants solo:500:32
//             --duration-ms 2000 --json load.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "daemon/client.hpp"
#include "mesh/mesh.hpp"
#include "rng/rng.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace oblivious;
using Clock = std::chrono::steady_clock;

constexpr const char* kUsage = R"(usage: oblv_load [flags]
  --socket PATH        connect to a Unix domain socket
  --tcp-port N         connect to loopback TCP instead
  --mesh WxHx...       mesh shape, must match the daemon (default 64x64)
  --tenants SPEC       name:rps:packets[,name:rps:packets...] -- each
                       tenant issues `rps` requests/second of `packets`
                       random demands each (default load:500:32)
  --duration-ms N      generation window in milliseconds (default 2000)
  --connections N      connections (worker threads) per tenant (default 4)
  --seed N             schedule + demand seed (default 1)
  --timeout-ms N       per-request client timeout (default 10000)
  --deadline-ms N      v2 request deadline; the daemon sheds work it
                       cannot finish in time as kExpired (default 0 =
                       no deadline)
  --retries N          retries per rejected request, honoring the
                       daemon's retry_after_ms hint with capped seeded
                       backoff (default 0 = never retry)
  --retry-base-ms N    base of the exponential backoff schedule
                       (default 5)
  --json FILE          write the oblv-load-v1 report
  --help               this text

Latency is completion minus *scheduled* arrival (open loop). The exit
status is 0 when every request was accounted (delivered + rejected +
expired + errors == sent) and nonzero otherwise.
)";

struct TenantSpec {
  std::string name;
  double rps = 0.0;
  std::size_t packets = 0;
};

struct TenantReport {
  std::string name;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;
  std::uint64_t retries = 0;
  std::uint64_t backoff_ms = 0;
  std::uint64_t delivered_packets = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
};

std::vector<TenantSpec> parse_tenants(const std::string& spec) {
  std::vector<TenantSpec> tenants;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    TenantSpec t;
    std::stringstream fields(item);
    std::string name, rps, packets;
    if (!std::getline(fields, name, ':') || !std::getline(fields, rps, ':') ||
        !std::getline(fields, packets, ':') || name.empty()) {
      throw std::invalid_argument(
          "--tenants entries are name:rps:packets, got '" + item + "'");
    }
    t.name = name;
    t.rps = std::stod(rps);
    t.packets = static_cast<std::size_t>(std::stoull(packets));
    if (t.rps <= 0.0 || t.packets == 0) {
      throw std::invalid_argument("tenant '" + name +
                                  "' needs rps > 0 and packets > 0");
    }
    tenants.push_back(std::move(t));
  }
  if (tenants.empty()) throw std::invalid_argument("--tenants is empty");
  return tenants;
}

Mesh parse_mesh(const std::string& spec, bool torus) {
  std::vector<std::int64_t> sides;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, 'x')) {
    sides.push_back(std::stoll(part));
  }
  return Mesh(std::move(sides), torus);
}

std::uint64_t tenant_hash(const std::string& name) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const char c : name) {
    h = splitmix64(h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

// Poisson arrival offsets (seconds from the run start) covering the
// generation window. Deterministic in (seed, tenant name).
std::vector<double> make_schedule(const TenantSpec& tenant,
                                  std::uint64_t seed, double duration_s) {
  Rng rng(splitmix64(seed ^ tenant_hash(tenant.name)));
  std::vector<double> offsets;
  double at = 0.0;
  while (true) {
    // Inverse-CDF exponential gap; uniform01 < 1 so the log is finite.
    const double gap = -std::log(1.0 - rng.uniform_double()) / tenant.rps;
    at += gap;
    if (at >= duration_s) break;
    offsets.push_back(at);
  }
  return offsets;
}

std::vector<Demand> make_demands(const Mesh& mesh, std::uint64_t seed,
                                 std::size_t packets) {
  Rng rng(seed);
  const auto nodes = static_cast<std::uint64_t>(mesh.num_nodes());
  std::vector<Demand> demands;
  demands.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    demands.push_back(
        Demand{static_cast<std::int64_t>(rng.uniform_below(nodes)),
               static_cast<std::int64_t>(rng.uniform_below(nodes))});
  }
  return demands;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct TenantRun {
  TenantSpec spec;
  std::vector<double> schedule;  // seconds from run start
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> expired{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> backoff_ms{0};
  std::atomic<std::uint64_t> delivered_packets{0};
  std::mutex latency_mu;
  std::vector<double> latencies_ms;
};

void worker(TenantRun& run, const daemon::Endpoint& endpoint,
            const Mesh& mesh, std::uint64_t seed, int timeout_ms,
            std::uint32_t deadline_ms, const daemon::RetryPolicy& retry,
            Clock::time_point start) {
  std::unique_ptr<daemon::DaemonClient> client;
  try {
    client = std::make_unique<daemon::DaemonClient>(endpoint, timeout_ms);
  } catch (const std::exception&) {
    // Connection refused: charge every arrival this worker would have
    // claimed as an error so the accounting identity still holds.
    while (run.next.fetch_add(1) < run.schedule.size()) {
      run.errors.fetch_add(1);
    }
    return;
  }
  const std::uint64_t tenant_seed = splitmix64(seed ^ tenant_hash(run.spec.name));
  std::vector<double> local_latencies;
  // Retry counters live in the client; fold them into the tenant totals
  // whenever a client is dropped (reconnect) and once at worker exit.
  const auto harvest = [&run](const daemon::DaemonClient& c) {
    run.retries.fetch_add(c.stats().retries);
    run.backoff_ms.fetch_add(c.stats().backoff_ms_total);
  };
  while (true) {
    const std::size_t i = run.next.fetch_add(1);
    if (i >= run.schedule.size()) break;
    const auto scheduled =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(run.schedule[i]));
    std::this_thread::sleep_until(scheduled);
    const std::uint64_t request_seed =
        splitmix64(tenant_seed ^ static_cast<std::uint64_t>(i));
    const std::vector<Demand> demands =
        make_demands(mesh, request_seed, run.spec.packets);
    try {
      const daemon::RouteResponse response = client->route_with_retry(
          run.spec.name, request_seed, demands, deadline_ms, retry);
      const double latency_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - scheduled)
              .count();
      switch (response.status) {
        case daemon::RouteStatus::kOk:
          run.delivered.fetch_add(1);
          run.delivered_packets.fetch_add(demands.size());
          local_latencies.push_back(latency_ms);
          break;
        case daemon::RouteStatus::kRejected:
        case daemon::RouteStatus::kShuttingDown:
          run.rejected.fetch_add(1);
          break;
        case daemon::RouteStatus::kExpired:
          run.expired.fetch_add(1);
          break;
        case daemon::RouteStatus::kError:
          run.errors.fetch_add(1);
          break;
      }
    } catch (const std::exception&) {
      run.errors.fetch_add(1);
      harvest(*client);
      // The connection is in an unknown state after a transport error;
      // reconnect before the next arrival.
      try {
        client = std::make_unique<daemon::DaemonClient>(endpoint, timeout_ms);
      } catch (const std::exception&) {
        while (run.next.fetch_add(1) < run.schedule.size()) {
          run.errors.fetch_add(1);
        }
        return;
      }
    }
  }
  harvest(*client);
  std::lock_guard<std::mutex> lock(run.latency_mu);
  run.latencies_ms.insert(run.latencies_ms.end(), local_latencies.begin(),
                          local_latencies.end());
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

int run(const Flags& flags) {
  if (flags.get_bool("help")) {
    std::cout << kUsage;
    return 0;
  }
  daemon::Endpoint endpoint;
  if (flags.has("tcp-port")) {
    endpoint.tcp_port = static_cast<std::uint16_t>(flags.get_int("tcp-port", 0));
  } else if (flags.has("socket")) {
    endpoint.unix_path = flags.get("socket", "");
  } else {
    std::cerr << "one of --socket or --tcp-port is required\n" << kUsage;
    return 1;
  }
  const Mesh mesh =
      parse_mesh(flags.get("mesh", "64x64"), flags.get_bool("torus"));
  const auto tenants = parse_tenants(flags.get("tenants", "load:500:32"));
  const double duration_s =
      static_cast<double>(flags.get_int("duration-ms", 2000)) / 1000.0;
  const auto connections =
      static_cast<std::size_t>(flags.get_int("connections", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int timeout_ms = static_cast<int>(flags.get_int("timeout-ms", 10000));
  const auto deadline_ms =
      static_cast<std::uint32_t>(flags.get_int("deadline-ms", 0));
  daemon::RetryPolicy retry;
  retry.max_retries = static_cast<std::size_t>(flags.get_int("retries", 0));
  retry.base_ms =
      static_cast<std::uint32_t>(flags.get_int("retry-base-ms", 5));
  retry.seed = seed;

  std::vector<std::unique_ptr<TenantRun>> runs;
  for (const TenantSpec& spec : tenants) {
    auto run_state = std::make_unique<TenantRun>();
    run_state->spec = spec;
    run_state->schedule = make_schedule(spec, seed, duration_s);
    runs.push_back(std::move(run_state));
  }

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (auto& run_state : runs) {
    for (std::size_t c = 0; c < connections; ++c) {
      threads.emplace_back([&run_state, &endpoint, &mesh, seed, timeout_ms,
                            deadline_ms, &retry, start] {
        worker(*run_state, endpoint, mesh, seed, timeout_ms, deadline_ms,
               retry, start);
      });
    }
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<TenantReport> reports;
  std::uint64_t total_sent = 0, total_delivered = 0, total_rejected = 0,
                total_expired = 0, total_errors = 0, total_retries = 0,
                total_packets = 0;
  for (auto& run_state : runs) {
    TenantReport r;
    r.name = run_state->spec.name;
    r.sent = run_state->schedule.size();
    r.delivered = run_state->delivered.load();
    r.rejected = run_state->rejected.load();
    r.expired = run_state->expired.load();
    r.errors = run_state->errors.load();
    r.retries = run_state->retries.load();
    r.backoff_ms = run_state->backoff_ms.load();
    r.delivered_packets = run_state->delivered_packets.load();
    std::vector<double>& lat = run_state->latencies_ms;
    std::sort(lat.begin(), lat.end());
    r.p50_ms = percentile(lat, 0.50);
    r.p99_ms = percentile(lat, 0.99);
    if (!lat.empty()) {
      double sum = 0.0;
      for (const double v : lat) sum += v;
      r.mean_ms = sum / static_cast<double>(lat.size());
    }
    total_sent += r.sent;
    total_delivered += r.delivered;
    total_rejected += r.rejected;
    total_expired += r.expired;
    total_errors += r.errors;
    total_retries += r.retries;
    total_packets += r.delivered_packets;
    reports.push_back(std::move(r));
  }
  const double throughput_pps =
      wall_s > 0.0 ? static_cast<double>(total_packets) / wall_s : 0.0;

  Table table({"tenant", "sent", "delivered", "rejected", "expired",
               "errors", "retries", "p50 ms", "p99 ms", "mean ms"});
  for (const TenantReport& r : reports) {
    table.row()
        .add(r.name)
        .add(static_cast<std::int64_t>(r.sent))
        .add(static_cast<std::int64_t>(r.delivered))
        .add(static_cast<std::int64_t>(r.rejected))
        .add(static_cast<std::int64_t>(r.expired))
        .add(static_cast<std::int64_t>(r.errors))
        .add(static_cast<std::int64_t>(r.retries))
        .add(r.p50_ms, 3)
        .add(r.p99_ms, 3)
        .add(r.mean_ms, 3);
  }
  table.print(std::cout);
  std::cout << "totals  : " << total_sent << " sent, " << total_delivered
            << " delivered, " << total_rejected << " rejected, "
            << total_expired << " expired, " << total_errors << " errors, "
            << total_retries << " retries\n";
  std::cout << "packets : " << total_packets << " delivered, "
            << throughput_pps / 1000.0 << " kpkt/s over " << wall_s
            << " s\n";

  if (flags.has("json")) {
    std::ostringstream out;
    out << "{\n  \"schema\": \"oblv-load-v1\",\n";
    out << "  \"duration_ms\": " << flags.get_int("duration-ms", 2000)
        << ",\n  \"seed\": " << seed << ",\n  \"tenants\": {\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const TenantReport& r = reports[i];
      out << "    \"" << json_escape(r.name) << "\": {\"sent\": " << r.sent
          << ", \"delivered\": " << r.delivered
          << ", \"rejected\": " << r.rejected
          << ", \"expired\": " << r.expired << ", \"errors\": " << r.errors
          << ", \"retries\": " << r.retries
          << ", \"backoff_ms\": " << r.backoff_ms
          << ", \"delivered_packets\": " << r.delivered_packets
          << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
          << ", \"mean_ms\": " << r.mean_ms << "}"
          << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  },\n  \"totals\": {\"sent\": " << total_sent
        << ", \"delivered\": " << total_delivered
        << ", \"rejected\": " << total_rejected
        << ", \"expired\": " << total_expired
        << ", \"errors\": " << total_errors
        << ", \"retries\": " << total_retries
        << ", \"delivered_packets\": " << total_packets
        << ", \"throughput_pps\": " << throughput_pps
        << ", \"wall_seconds\": " << wall_s << "}\n}\n";
    const std::string path = flags.get("json", "");
    std::ofstream file(path);
    if (!file) {
      std::cerr << "oblv_load: cannot write " << path << "\n";
      return 1;
    }
    file << out.str();
    std::cout << "report written to " << path << "\n";
  }

  return total_delivered + total_rejected + total_expired + total_errors ==
                 total_sent
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Flags::parse(
        argc, argv,
        {"socket", "tcp-port", "mesh", "torus", "tenants", "duration-ms",
         "connections", "seed", "timeout-ms", "deadline-ms", "retries",
         "retry-base-ms", "json", "help"}));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << kUsage;
    return 1;
  }
}
