#!/usr/bin/env python3
"""Deterministic network-chaos soak for oblvd.

Requires an oblvd built with -DOBLV_CHAOS=ON.  For every seed the soak
runs two phases against a chaos-armed daemon (short reads, torn writes,
stalls, and connection resets injected from the seeded counter-derived
schedule in src/daemon/chaos.cpp):

  determinism  the same strictly sequential workload is driven twice
               with the same --chaos-seed; the two runs must report
               identical daemon.chaos.* counters and identical
               request accounting (same faults, same victims).

  stress       concurrent clients under chaos and CoDel overload
               control, deadline probes pipelined behind large
               requests, and a slow-loris client that completes its
               half-sent frame only after SIGTERM.  Every offered
               request must be classified exactly once:

                 delivered + rejected + expired + failed == offered

               and the daemon must drain cleanly under fire: exit 0,
               daemon.unaccounted == 0.

The harness speaks the v2 wire protocol directly (pure python, no
bindings) so client-side failure handling is fully under test control.
Exit 0 when every assertion holds for every seed.  Used by ctest
(ChaosSoak, only registered in chaos builds) and the chaos-soak CI job.
"""

import argparse
import json
import os
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time

MAGIC = 0x564C424F  # "OBLV"
VERSION = 2
MSG_ROUTE_REQUEST = 1
MSG_ROUTE_RESPONSE = 2
STATUS_NAMES = {0: "delivered", 1: "rejected", 2: "error",
                3: "rejected", 4: "expired"}  # kShuttingDown counts as rejected


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def encode_route_request(request_id, seed, deadline_ms, tenant, demands):
    body = struct.pack("<IHHI", MAGIC, VERSION, MSG_ROUTE_REQUEST, request_id)
    body += struct.pack("<QI", seed, deadline_ms)
    tenant_bytes = tenant.encode()
    body += struct.pack("<H", len(tenant_bytes)) + tenant_bytes
    body += struct.pack("<I", len(demands))
    for src, dst in demands:
        body += struct.pack("<qq", src, dst)
    return struct.pack("<I", len(body)) + body


def recv_exact(sock, size):
    data = b""
    while len(data) < size:
        chunk = sock.recv(size - len(data))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        data += chunk
    return data


def read_route_response(sock):
    """Returns (request_id, status)."""
    (length,) = struct.unpack("<I", recv_exact(sock, 4))
    payload = recv_exact(sock, length)
    magic, _version, msg_type, request_id = struct.unpack_from("<IHHI",
                                                               payload, 0)
    if magic != MAGIC or msg_type != MSG_ROUTE_RESPONSE:
        raise ConnectionError(f"unexpected frame type {msg_type}")
    (status,) = struct.unpack_from("<H", payload, 12)
    return request_id, status


def connect(sock_path, timeout_s=10.0):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout_s)
    sock.connect(sock_path)
    return sock


def make_demands(nodes, count, seed):
    # splitmix64, mirrored from src/rng/rng.hpp so demand streams are
    # reproducible without native bindings.
    demands = []
    state = seed
    for _ in range(2 * count):
        state = (state + 0x9E3779B97F4A7C15) & (2**64 - 1)
        z = state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & (2**64 - 1)
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & (2**64 - 1)
        demands.append((z ^ (z >> 31)) % nodes)
    return [(demands[2 * i], demands[2 * i + 1]) for i in range(count)]


class Tally:
    """Thread-safe client-side classification of offered requests."""

    def __init__(self):
        self.lock = threading.Lock()
        self.counts = {"offered": 0, "delivered": 0, "rejected": 0,
                       "expired": 0, "failed": 0, "error": 0}

    def add(self, bucket):
        with self.lock:
            self.counts["offered"] += 1
            self.counts[bucket] += 1

    def classified(self):
        c = self.counts
        return (c["delivered"] + c["rejected"] + c["expired"] + c["failed"]
                + c["error"])


def issue(sock_path, tally, tenant, nodes, count, seed, deadline_ms=0,
          request_id=1):
    """One connect/request/response round, classified into the tally.

    Returns the status name, or "failed" on any transport fault (the
    chaos layer resets connections; a lost response is still `failed`
    client-side even though the daemon may have counted it delivered --
    the daemon's own invariant is checked from its metrics file).
    """
    try:
        sock = connect(sock_path)
    except OSError:
        tally.add("failed")
        return "failed"
    try:
        frame = encode_route_request(request_id, seed, deadline_ms, tenant,
                                     make_demands(nodes, count, seed))
        sock.sendall(frame)
        rid, status = read_route_response(sock)
        if rid != request_id:
            tally.add("failed")
            return "failed"
        bucket = STATUS_NAMES.get(status, "error")
        tally.add(bucket)
        return bucket
    except (OSError, ConnectionError):
        tally.add("failed")
        return "failed"
    finally:
        sock.close()


def start_daemon(oblvd, sock_path, metrics_path, chaos_seed, codel=False):
    cmd = [
        oblvd,
        "--socket", sock_path,
        "--mesh", "16x16",
        "--algorithm", "hierarchical-2d",
        "--threads", "2",
        "--queue-capacity", "2048",
        "--batch-max", "512",
        "--drain-rate", "50",
        "--metrics-json", metrics_path,
        "--chaos-seed", str(chaos_seed),
        "--chaos-short-read", "80",
        "--chaos-torn-write", "80",
        "--chaos-stall", "40",
        "--chaos-reset", "30",
        "--chaos-stall-ms", "2",
    ]
    if codel:
        cmd += ["--codel-target-ms", "5", "--codel-interval-ms", "50"]
    print(f"+ {' '.join(cmd)}", flush=True)
    daemon = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
    start = time.monotonic()
    while time.monotonic() - start < 10.0:
        if daemon.poll() is not None:
            out = daemon.stdout.read()
            fail(f"daemon exited {daemon.returncode} at startup:\n{out}")
        if os.path.exists(sock_path):
            return daemon
        time.sleep(0.05)
    daemon.kill()
    fail(f"daemon socket {sock_path} did not appear")


def stop_daemon(daemon, sock_path, what):
    daemon.send_signal(signal.SIGTERM)
    try:
        rc = daemon.wait(timeout=30)
    except subprocess.TimeoutExpired:
        daemon.kill()
        daemon.wait()
        fail(f"{what}: daemon wedged, no drain within 30s of SIGTERM")
    sys.stdout.write(daemon.stdout.read())
    if os.path.exists(sock_path):
        os.unlink(sock_path)
    if rc != 0:
        fail(f"{what}: daemon exited {rc} after SIGTERM (want 0)")


def load_metrics(metrics_path, what):
    try:
        with open(metrics_path) as f:
            metrics = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"{what}: cannot read metrics {metrics_path}: {e}")
    gauges = metrics["metrics"]["gauges"]
    counters = metrics["metrics"].get("counters", {})
    unaccounted = gauges.get("daemon.unaccounted")
    if unaccounted != 0:
        fail(f"{what}: daemon.unaccounted == {unaccounted} (want 0)")
    return gauges, counters


def fingerprint(gauges, counters):
    """The pair of dicts that must be bit-identical across same-seed runs."""
    chaos = {k: v for k, v in counters.items()
             if k.startswith("daemon.chaos.")}
    accounting = {k: gauges[k] for k in sorted(gauges)
                  if k.startswith("daemon.requests.")}
    return {"chaos": chaos, "accounting": accounting}


def run_sequential(oblvd, workdir, chaos_seed, tag):
    """One strictly sequential pass; returns its determinism fingerprint.

    Single outstanding request at a time, no deadlines: every chaos
    fault point fires in a fixed per-site order, so the full fault
    schedule -- and which requests it kills -- is a pure function of
    the seed.
    """
    sock_path = tempfile.mktemp(prefix="oblvd-seq-", suffix=".sock",
                                dir="/tmp")
    metrics_path = os.path.join(workdir, f"seq_{tag}.json")
    daemon = start_daemon(oblvd, sock_path, metrics_path, chaos_seed)
    tally = Tally()
    try:
        for i in range(40):
            issue(sock_path, tally, "seq", nodes=256, count=16,
                  seed=1000 + i, request_id=i + 1)
    finally:
        stop_daemon(daemon, sock_path, f"sequential[{tag}]")
    gauges, counters = load_metrics(metrics_path, f"sequential[{tag}]")
    if tally.classified() != tally.counts["offered"]:
        fail(f"sequential[{tag}]: unclassified requests: {tally.counts}")
    print(f"sequential[{tag}]: {tally.counts}", flush=True)
    return fingerprint(gauges, counters)


def run_stress(oblvd, workdir, chaos_seed):
    """Concurrent chaos + deadlines + overload + slow-loris drain."""
    sock_path = tempfile.mktemp(prefix="oblvd-soak-", suffix=".sock",
                                dir="/tmp")
    metrics_path = os.path.join(workdir, f"stress_{chaos_seed}.json")
    daemon = start_daemon(oblvd, sock_path, metrics_path, chaos_seed,
                          codel=True)
    tally = Tally()
    loris = None
    try:
        # Concurrent open-loop chaos traffic: four workers, a quarter of
        # the requests carrying tight deadlines.
        def worker(wid):
            for i in range(25):
                deadline = 30 if i % 4 == 0 else 0
                issue(sock_path, tally, f"w{wid}", nodes=256, count=64,
                      seed=(wid << 16) | i, deadline_ms=deadline,
                      request_id=i + 1)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Deadline probes: a request whose 1 ms budget starts when its
        # first byte hits the daemon (frame_start_ms), written with a
        # 50 ms pause mid-frame.  The transport delay consumes the
        # whole budget, so the daemon must shed it at admission and
        # answer kExpired -- deterministically, independent of queue
        # depth -- unless chaos resets the connection first; retry a
        # few times to ride out resets.
        expired_seen = False
        for attempt in range(5):
            probe = None
            tally.counts["offered"] += 1
            try:
                probe = connect(sock_path)
                frame = encode_route_request(
                    7, 99, 1, "probe", make_demands(256, 16, 99))
                probe.sendall(frame[:10])
                time.sleep(0.05)
                probe.sendall(frame[10:])
                _, status = read_route_response(probe)
                bucket = STATUS_NAMES.get(status, "error")
                tally.counts[bucket] += 1
                if bucket == "expired":
                    expired_seen = True
                    break
            except (OSError, ConnectionError):
                tally.counts["failed"] += 1
            finally:
                if probe is not None:
                    probe.close()
        if not expired_seen:
            fail(f"seed {chaos_seed}: no slow-written 1 ms-deadline probe "
                 "expired in 5 attempts (admission shedding is not "
                 "engaging)")

        # Overload burst: hammer large no-deadline requests from two
        # workers; the small queue plus CoDel must push back.
        def burst(wid):
            for i in range(15):
                issue(sock_path, tally, "greedy", nodes=256, count=256,
                      seed=(wid << 20) | i, request_id=i + 1)

        threads = [threading.Thread(target=burst, args=(w,))
                   for w in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Slow-loris drain: half a frame on the wire when SIGTERM
        # lands; the drain must not wedge waiting for the rest, and
        # completing the frame afterwards gets a classified response
        # (kShuttingDown) or a clean close, never a hang.
        frame = encode_route_request(55, 3, 0, "loris",
                                     make_demands(256, 8, 77))
        loris = connect(sock_path)
        loris.sendall(frame[:10])
        daemon.send_signal(signal.SIGTERM)
        time.sleep(0.2)
        tally.counts["offered"] += 1
        try:
            loris.sendall(frame[10:])
            _, status = read_route_response(loris)
            tally.counts[STATUS_NAMES.get(status, "error")] += 1
        except (OSError, ConnectionError):
            tally.counts["failed"] += 1
        try:
            rc = daemon.wait(timeout=30)
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait()
            fail(f"seed {chaos_seed}: drain wedged under slow-loris + chaos")
        sys.stdout.write(daemon.stdout.read())
        if rc != 0:
            fail(f"seed {chaos_seed}: daemon exited {rc} after SIGTERM "
                 "(want 0)")
    finally:
        if loris is not None:
            loris.close()
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        if os.path.exists(sock_path):
            os.unlink(sock_path)

    c = tally.counts
    if tally.classified() != c["offered"]:
        fail(f"seed {chaos_seed}: accounting identity broken client-side: "
             f"{c['delivered']} delivered + {c['rejected']} rejected + "
             f"{c['expired']} expired + {c['failed']} failed + "
             f"{c['error']} error != {c['offered']} offered")
    if c["error"]:
        fail(f"seed {chaos_seed}: daemon returned kError under chaos: {c}")
    gauges, counters = load_metrics(metrics_path, f"stress[{chaos_seed}]")
    shed = sum(v for k, v in counters.items()
               if k.startswith("daemon.deadline.shed_"))
    print(f"stress[{chaos_seed}]: {c}; server shed {shed} on deadline, "
          f"chaos faults "
          f"{ {k.split('.')[-1]: v for k, v in counters.items() if k.startswith('daemon.chaos.')} }",
          flush=True)
    if shed == 0:
        fail(f"seed {chaos_seed}: client saw kExpired but no "
             "daemon.deadline.shed_* counter moved")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--oblvd", required=True,
                        help="oblvd built with -DOBLV_CHAOS=ON")
    parser.add_argument("--seeds", default="1,2,3,4,5",
                        help="comma-separated chaos seeds")
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args()

    seeds = [int(s) for s in args.seeds.split(",") if s]
    if len(seeds) < 1:
        fail("need at least one seed")
    workdir = args.workdir or tempfile.mkdtemp(prefix="oblvd-chaos-")
    os.makedirs(workdir, exist_ok=True)

    # Refuse to "pass" against a chaos-less binary: a chaos-less oblvd
    # rejects --chaos-seed before it ever binds (the bogus socket
    # directory stops a chaos build from actually serving).
    try:
        probe = subprocess.run(
            [args.oblvd, "--chaos-seed", "1", "--socket",
             os.path.join(workdir, "no-such-dir", "probe.sock")],
            capture_output=True, text=True, timeout=10)
        probe_out = probe.stdout + probe.stderr
    except subprocess.TimeoutExpired:
        probe_out = ""  # it served: definitely a chaos build
    # Match the throw's unique phrasing, not the usage text (which also
    # mentions the flag's build requirement).
    if "compiled out of this binary" in probe_out:
        fail(f"{args.oblvd} was built without -DOBLV_CHAOS=ON")

    for seed in seeds:
        print(f"=== seed {seed} ===", flush=True)
        first = run_sequential(args.oblvd, workdir, seed, f"{seed}a")
        second = run_sequential(args.oblvd, workdir, seed, f"{seed}b")
        if first != second:
            fail(f"seed {seed}: same seed, different runs:\n"
                 f"  run a: {json.dumps(first, sort_keys=True)}\n"
                 f"  run b: {json.dumps(second, sort_keys=True)}")
        print(f"determinism[{seed}]: fault schedule + accounting "
              f"reproduced: {json.dumps(first['chaos'], sort_keys=True)}",
              flush=True)
        run_stress(args.oblvd, workdir, seed)

    print(f"OK: {len(seeds)} seeds survived chaos with exact accounting "
          "and reproducible fault schedules")
    return 0


if __name__ == "__main__":
    sys.exit(main())
