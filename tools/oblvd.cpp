// oblvd -- routing-as-a-service daemon.
//
// Serves oblivious path selection over a Unix or loopback TCP socket:
// length-prefixed binary requests (see src/daemon/protocol.hpp) are
// admission-controlled into a per-tenant weighted fair-share queue,
// coalesced into batches through route_batch / the SoA engine, and the
// segment paths stream back per request. SIGTERM/SIGINT drain
// gracefully: stop accepting, flush every admitted request, exit 0.
//
// Examples:
//   oblvd --socket /tmp/oblvd.sock --mesh 64x64 --algorithm hierarchical-2d
//   oblvd --tcp-port 7447 --mesh 32x32x32 --algorithm hierarchical-nd
//         --tenants interactive:4,batch:1 --queue-capacity 32768
#include <csignal>
#include <fstream>
#include <iostream>

#include "daemon/server.hpp"
#include "mesh/mesh.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/flags.hpp"

#ifdef OBLV_CHAOS_ENABLED
#include "daemon/chaos.hpp"
#endif

namespace {

using namespace oblivious;

constexpr const char* kUsage = R"(usage: oblvd [flags]
  --socket PATH        listen on a Unix domain socket (default
                       /tmp/oblvd.sock when --tcp-port is absent)
  --tcp-port N         listen on loopback TCP instead (0 picks a port)
  --mesh WxHx...       mesh shape (default 64x64)
  --torus              wrap-around topology
  --algorithm NAME     routing algorithm (default hierarchical-2d)
  --threads N          routing pool width for route_batch (default 2)
  --queue-capacity N   admission bound, packets across all tenants
                       (default 65536)
  --batch-max N        packets per coalesced batch quantum (default 4096)
  --tenants SPEC       declared tenants name:weight[,name:weight...];
                       undeclared tenants get weight 1
  --drain-rate N       retry-after hint rate, packets/ms (default 100)
  --account MODE       congestion accounting: exact | sketch (default
                       exact; sketch bounds memory on gigantic meshes)
  --sketch-bytes N     sketch memory budget in bytes (default 1 MiB)
  --codel-target-ms N  CoDel overload control: per-tenant time-in-queue
                       target in ms (0 disables, the default)
  --codel-interval-ms N  CoDel detection interval in ms (default 500)
  --chaos-seed N       arm the deterministic network-chaos fault points
                       with this seed (requires a -DOBLV_CHAOS=ON build)
  --chaos-short-read N   short-read rate, per mille (default 0)
  --chaos-torn-write N   torn-write rate, per mille (default 0)
  --chaos-stall N        stall rate, per mille (default 0)
  --chaos-reset N        reset rate, per mille (default 0)
  --chaos-stall-ms N     stall duration in ms (default 5)
  --metrics-json FILE  write the final oblv-metrics-v1 report (with
                       daemon.* gauges) after the drain completes
  --help               this text

Send SIGTERM (or SIGINT) to drain: the daemon stops accepting, flushes
every admitted request, verifies
submitted == delivered + rejected + expired, and exits 0.
)";

daemon::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

std::vector<std::pair<std::string, std::uint64_t>> parse_tenants(
    const std::string& spec) {
  std::vector<std::pair<std::string, std::uint64_t>> tenants;
  std::size_t at = 0;
  while (at < spec.size()) {
    const std::size_t comma = spec.find(',', at);
    const std::string item =
        spec.substr(at, comma == std::string::npos ? comma : comma - at);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::invalid_argument("--tenants entries are name:weight, got '" +
                                  item + "'");
    }
    tenants.emplace_back(
        item.substr(0, colon),
        static_cast<std::uint64_t>(std::stoull(item.substr(colon + 1))));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return tenants;
}

Mesh parse_mesh(const std::string& spec, bool torus) {
  std::vector<std::int64_t> sides;
  std::size_t at = 0;
  while (at <= spec.size()) {
    const std::size_t x = spec.find('x', at);
    sides.push_back(
        std::stoll(spec.substr(at, x == std::string::npos ? x : x - at)));
    if (x == std::string::npos) break;
    at = x + 1;
  }
  return Mesh(std::move(sides), torus);
}

int run(const Flags& flags) {
  if (flags.get_bool("help")) {
    std::cout << kUsage;
    return 0;
  }

  const Mesh mesh =
      parse_mesh(flags.get("mesh", "64x64"), flags.get_bool("torus"));

  daemon::ServerOptions options;
  if (flags.has("tcp-port")) {
    options.endpoint.tcp_port =
        static_cast<std::uint16_t>(flags.get_int("tcp-port", 0));
  } else {
    options.endpoint.unix_path = flags.get("socket", "/tmp/oblvd.sock");
  }
  options.algorithm = flags.get("algorithm", "hierarchical-2d");
  options.routing_threads =
      static_cast<std::size_t>(flags.get_int("threads", 2));
  options.max_batch_packets =
      static_cast<std::size_t>(flags.get_int("batch-max", 4096));
  options.queue.capacity_packets =
      static_cast<std::size_t>(flags.get_int("queue-capacity", 1 << 16));
  options.queue.drain_rate_hint =
      static_cast<std::size_t>(flags.get_int("drain-rate", 100));
  if (flags.has("tenants")) {
    options.tenants = parse_tenants(flags.get("tenants", ""));
  }
  const auto mode = accounting_mode_from_name(flags.get("account", "exact"));
  if (!mode.has_value()) {
    throw std::invalid_argument("--account must be 'exact' or 'sketch'");
  }
  options.accounting.mode = *mode;
  options.accounting.sketch.sketch_bytes = static_cast<std::size_t>(
      flags.get_int("sketch-bytes",
                    static_cast<std::int64_t>(SketchConfig{}.sketch_bytes)));
  options.queue.codel_target_ms =
      static_cast<std::uint64_t>(flags.get_int("codel-target-ms", 0));
  options.queue.codel_interval_ms =
      static_cast<std::uint64_t>(flags.get_int("codel-interval-ms", 500));

  if (flags.has("chaos-seed")) {
#ifdef OBLV_CHAOS_ENABLED
    daemon::chaos::ChaosConfig chaos;
    chaos.seed = static_cast<std::uint64_t>(flags.get_int("chaos-seed", 0));
    chaos.short_read_per_mille =
        static_cast<std::uint32_t>(flags.get_int("chaos-short-read", 0));
    chaos.torn_write_per_mille =
        static_cast<std::uint32_t>(flags.get_int("chaos-torn-write", 0));
    chaos.stall_per_mille =
        static_cast<std::uint32_t>(flags.get_int("chaos-stall", 0));
    chaos.reset_per_mille =
        static_cast<std::uint32_t>(flags.get_int("chaos-reset", 0));
    chaos.stall_ms =
        static_cast<std::uint32_t>(flags.get_int("chaos-stall-ms", 5));
    daemon::chaos::configure(chaos);
    std::cout << "oblvd: chaos armed, seed " << chaos.seed << "\n";
#else
    throw std::invalid_argument(
        "--chaos-seed requires a -DOBLV_CHAOS=ON build (the fault points "
        "are compiled out of this binary)");
#endif
  }

  daemon::Server server(mesh, options);
  g_server = &server;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::cout << "oblvd: " << mesh.describe() << ", algorithm "
            << options.algorithm << ", queue "
            << options.queue.capacity_packets << " packets, batch quantum "
            << options.max_batch_packets << "\n";
  if (options.endpoint.is_unix()) {
    std::cout << "oblvd: listening on " << options.endpoint.unix_path
              << std::endl;
  } else {
    std::cout << "oblvd: listening on tcp port "
              << options.endpoint.tcp_port << std::endl;
  }

  const int rc = server.run();

  const daemon::ServerStats stats = server.stats();
  std::cout << "oblvd: drained -- " << stats.requests_submitted
            << " submitted, " << stats.requests_delivered << " delivered, "
            << stats.requests_rejected << " rejected, "
            << stats.requests_expired << " expired, unaccounted "
            << stats.unaccounted_requests() << "\n";
  if (flags.has("metrics-json")) {
    const std::string path = flags.get("metrics-json", "");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "oblvd: cannot write " << path << "\n";
      return 1;
    }
    out << server.metrics_json() << "\n";
    std::cout << "oblvd: metrics written to " << path << "\n";
  }
  g_server = nullptr;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Flags::parse(
        argc, argv,
        {"socket", "tcp-port", "mesh", "torus", "algorithm", "threads",
         "queue-capacity", "batch-max", "tenants", "drain-rate", "account",
         "sketch-bytes", "codel-target-ms", "codel-interval-ms",
         "chaos-seed", "chaos-short-read", "chaos-torn-write", "chaos-stall",
         "chaos-reset", "chaos-stall-ms", "metrics-json", "help"}));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << kUsage;
    return 1;
  }
}
