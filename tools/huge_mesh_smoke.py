#!/usr/bin/env python3
"""Huge-mesh smoke: sketch accounting must hold a fixed memory budget.

Runs `oblv_route --stream` on a mesh whose exact per-edge load array
could not be allocated on the runner (default: 1024x1024x1024, ~3.2e9
edges, ~12.8 GB exact) with sketch accounting, and fails unless

  * the run exits 0 and routes every packet,
  * the reported sketch memory stays inside --sketch-bytes, and
  * the PROCESS peak RSS stays under --max-rss-mb -- the end-to-end
    proof that no hidden O(E) allocation rode along (the wrapper
    measures the whole process, not just the accountant's own count).

Peak RSS comes from resource.getrusage(RUSAGE_CHILDREN) after the child
exits (ru_maxrss, kbytes on Linux), so the check needs no /usr/bin/time.

Usage:
  huge_mesh_smoke.py --binary build/tools/oblv_route
      [--mesh 1024x1024x1024] [--packets 100000]
      [--sketch-bytes 8388608] [--max-rss-mb 512]

Exit status: 0 on success, 1 on any violated check, 2 on usage error.
"""

from __future__ import annotations

import argparse
import re
import resource
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", required=True,
                        help="path to the oblv_route binary")
    parser.add_argument("--mesh", default="1024x1024x1024")
    parser.add_argument("--packets", type=int, default=100000)
    parser.add_argument("--sketch-bytes", type=int, default=8 * 1024 * 1024)
    parser.add_argument("--max-rss-mb", type=int, default=512)
    parser.add_argument("--threads", type=int, default=2)
    args = parser.parse_args()

    cmd = [
        args.binary,
        "--mesh", args.mesh,
        "--stream", str(args.packets),
        "--account", "sketch",
        "--sketch-bytes", str(args.sketch_bytes),
        "--threads", str(args.threads),
    ]
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(f"FAIL: exit status {proc.returncode}")
        return 1

    failures = []

    routed = re.search(r"routed\s*:\s*(\d+) packets", proc.stdout)
    if not routed or int(routed.group(1)) != args.packets:
        failures.append(f"expected {args.packets} routed packets, got "
                        f"{routed.group(1) if routed else 'nothing'}")

    memory = re.search(r"memory\s*:\s*(\d+) bytes", proc.stdout)
    if not memory:
        failures.append("no sketch memory report in output")
    elif int(memory.group(1)) > args.sketch_bytes:
        failures.append(f"sketch memory {memory.group(1)} bytes exceeds the "
                        f"{args.sketch_bytes}-byte budget")

    # ru_maxrss is the max over all waited-for children; the oblv_route
    # run above dominates anything else this process spawned (nothing).
    rss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    rss_mb = rss_kb / 1024.0
    print(f"peak RSS: {rss_mb:.1f} MB (cap {args.max_rss_mb} MB)")
    if rss_mb > args.max_rss_mb:
        failures.append(f"peak RSS {rss_mb:.1f} MB exceeds the "
                        f"{args.max_rss_mb} MB cap -- an O(E) allocation "
                        "leaked into the streaming path")

    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print("huge-mesh smoke: all checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
