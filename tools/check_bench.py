#!/usr/bin/env python3
"""Gate perf-smoke metrics against a checked-in baseline.

Reads oblv-metrics-v1 JSON files (written by the bench harnesses via
OBLV_METRICS_JSON / --metrics-json) and checks them against the entries of
a baseline file.  Each check names a metric by path and one of:

  * "baseline": fail when value > baseline * (1 + tolerance_pct/100);
  * "max":      fail when value > max (absolute cap, e.g. an overhead
                budget or a deterministic upper bound);
  * "min":      fail when value < min (absolute floor, e.g. a
                throughput requirement);
  * "equals":   fail unless value == equals exactly (for deterministic
                outputs such as seeded congestion counts).

Baseline format:

  {
    "tolerance_pct": 25.0,
    "checks": [
      {"file": "p4_metrics.json",
       "metric": "timers:routing.route_seconds:mean",
       "baseline": 0.025},
      {"file": "p5_metrics.json",
       "metric": "gauges:obs.overhead_pct",
       "max": 2.0}
    ]
  }

The metric path is "kind:name" for counters and gauges and
"kind:name:field" for timers (count/mean/stddev/min/max/total) and
histograms (count/sum/mean/p50/p90/p99).

Usage: check_bench.py --baseline bench/baselines/perf_smoke.json --dir perf
"""

import argparse
import json
import sys


def lookup(metrics, path):
    parts = path.split(":")
    if len(parts) not in (2, 3):
        raise KeyError(f"bad metric path '{path}'")
    kind, name = parts[0], parts[1]
    entry = metrics[kind][name]
    if len(parts) == 3:
        entry = entry[parts[2]]
    if not isinstance(entry, (int, float)):
        raise KeyError(f"metric path '{path}' is not scalar")
    return float(entry)


def run_check(check, value, tolerance_pct):
    """Returns (ok, description)."""
    if "equals" in check:
        want = float(check["equals"])
        return value == want, f"value {value} == {want}"
    if "max" in check:
        cap = float(check["max"])
        return value <= cap, f"value {value} <= max {cap}"
    if "min" in check:
        floor = float(check["min"])
        return value >= floor, f"value {value} >= min {floor}"
    if "baseline" in check:
        tol = float(check.get("tolerance_pct", tolerance_pct))
        cap = float(check["baseline"]) * (1.0 + tol / 100.0)
        return value <= cap, (
            f"value {value} <= baseline {check['baseline']} +{tol}% = {cap:g}"
        )
    raise KeyError("check needs one of 'equals', 'max', 'min', 'baseline'")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="baseline JSON file with the checks")
    parser.add_argument("--dir", default=".",
                        help="directory holding the metrics JSON files")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    tolerance_pct = float(baseline.get("tolerance_pct", 25.0))

    failures = 0
    for check in baseline["checks"]:
        path = f"{args.dir}/{check['file']}"
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
            value = lookup(report["metrics"], check["metric"])
            ok, description = run_check(check, value, tolerance_pct)
        except (OSError, KeyError, json.JSONDecodeError) as e:
            ok, description = False, f"error: {e}"
        status = "ok  " if ok else "FAIL"
        print(f"[{status}] {check['file']} {check['metric']}: {description}")
        failures += 0 if ok else 1

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
