#!/usr/bin/env python3
"""Fair-share isolation + graceful-drain smoke for oblvd.

Scenario (fixed seed, bounded duration):
  1. start oblvd on a Unix socket with tenants light:4, greedy:1 and a
     deliberately small admission queue;
  2. solo run: the light tenant alone -> baseline p99;
  3. contended run: light at the same rate plus a greedy tenant pushing
     far past its fair share -> greedy must saturate (rejections) while
     light's p99 stays within 2x of solo (with an absolute floor so a
     noisy CI runner cannot flake the ratio);
  4. SIGTERM -> the daemon must drain gracefully: exit code 0, metrics
     JSON written, daemon.unaccounted == 0, and submitted ==
     delivered + rejected + expired.

Exit 0 when every assertion holds.  Used by ctest (DaemonSmoke) and the
daemon-integration CI job.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

P99_RATIO = 2.0
P99_FLOOR_MS = 50.0  # flake guard: ratio is only enforced above this


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_socket(path, deadline_s=10.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if os.path.exists(path):
            return
        time.sleep(0.05)
    fail(f"daemon socket {path} did not appear within {deadline_s}s")


def run_load(oblv_load, socket, mesh, tenants, duration_ms, seed, json_path):
    cmd = [
        oblv_load,
        "--socket", socket,
        "--mesh", mesh,
        "--tenants", tenants,
        "--duration-ms", str(duration_ms),
        "--seed", str(seed),
        "--json", json_path,
    ]
    print(f"+ {' '.join(cmd)}", flush=True)
    result = subprocess.run(cmd, capture_output=True, text=True)
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if result.returncode != 0:
        fail(f"oblv_load exited {result.returncode}")
    with open(json_path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--oblvd", required=True)
    parser.add_argument("--oblv-load", required=True)
    parser.add_argument("--workdir", default=None,
                        help="directory for sockets and reports")
    parser.add_argument("--metrics-out", default=None,
                        help="copy the daemon's final metrics JSON here")
    parser.add_argument("--mesh", default="64x64")
    parser.add_argument("--duration-ms", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="oblvd-smoke-")
    os.makedirs(workdir, exist_ok=True)
    # sun_path is limited to ~107 bytes; keep the socket name short.
    socket = tempfile.mktemp(prefix="oblvd-", suffix=".sock", dir="/tmp")
    metrics_json = os.path.join(workdir, "oblvd_metrics.json")

    daemon_cmd = [
        args.oblvd,
        "--socket", socket,
        "--mesh", args.mesh,
        "--algorithm", "hierarchical-2d",
        "--threads", "2",
        "--tenants", "light:4,greedy:1",
        "--queue-capacity", "4096",
        "--batch-max", "1024",
        "--metrics-json", metrics_json,
    ]
    print(f"+ {' '.join(daemon_cmd)}", flush=True)
    daemon = subprocess.Popen(daemon_cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
    try:
        wait_for_socket(socket)

        # Phase 1: the light tenant alone.
        solo = run_load(args.oblv_load, socket, args.mesh,
                        "light:100:16", args.duration_ms, args.seed,
                        os.path.join(workdir, "load_solo.json"))
        solo_light = solo["tenants"]["light"]
        if solo_light["delivered"] == 0:
            fail("solo run delivered nothing")
        if solo_light["rejected"] or solo_light["errors"]:
            fail(f"solo light tenant saw rejections/errors: {solo_light}")
        p99_solo = solo_light["p99_ms"]

        # Phase 2: same light rate, plus a greedy tenant far past its
        # fair share (1/5 of a 4096-packet queue ~ 819 packets; at
        # 600 rps x 512 packets the offered load is ~30x the share).
        contended = run_load(
            args.oblv_load, socket, args.mesh,
            "light:100:16,greedy:600:512", args.duration_ms, args.seed + 1,
            os.path.join(workdir, "load_contended.json"))
        light = contended["tenants"]["light"]
        greedy = contended["tenants"]["greedy"]
        if light["errors"] or greedy["errors"]:
            fail(f"contended run saw transport errors: light={light} "
                 f"greedy={greedy}")
        if light["rejected"]:
            fail(f"light tenant was rejected under contention: {light} "
                 "(its fair share should never fill)")
        if greedy["rejected"] == 0:
            fail(f"greedy tenant was never rejected: {greedy} "
                 "(offered load should exceed its share)")
        p99_contended = light["p99_ms"]
        bound = max(P99_RATIO * p99_solo, P99_FLOOR_MS)
        print(f"light p99: solo {p99_solo:.3f} ms, contended "
              f"{p99_contended:.3f} ms, bound {bound:.3f} ms", flush=True)
        print(f"greedy: {greedy['delivered']} delivered, "
              f"{greedy['rejected']} rejected", flush=True)
        if p99_contended > bound:
            fail(f"light tenant p99 {p99_contended:.3f} ms exceeds "
                 f"{bound:.3f} ms (solo {p99_solo:.3f} ms)")

        # Phase 3: graceful drain.
        daemon.send_signal(signal.SIGTERM)
        try:
            rc = daemon.wait(timeout=30)
        except subprocess.TimeoutExpired:
            daemon.kill()
            fail("daemon did not drain within 30s of SIGTERM")
        output = daemon.stdout.read()
        sys.stdout.write(output)
        if rc != 0:
            fail(f"daemon exited {rc} after SIGTERM (want 0)")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        if os.path.exists(socket):
            os.unlink(socket)

    with open(metrics_json) as f:
        metrics = json.load(f)
    if metrics.get("schema") != "oblv-metrics-v1":
        fail(f"unexpected metrics schema: {metrics.get('schema')}")
    gauges = metrics["metrics"]["gauges"]
    unaccounted = gauges.get("daemon.unaccounted")
    if unaccounted != 0:
        fail(f"daemon.unaccounted == {unaccounted} (want 0)")
    submitted = gauges["daemon.requests.submitted"]
    delivered = gauges["daemon.requests.delivered"]
    rejected = gauges["daemon.requests.rejected"]
    expired = gauges.get("daemon.requests.expired", 0)
    if submitted != delivered + rejected + expired:
        fail(f"accounting identity broken: {submitted} submitted != "
             f"{delivered} delivered + {rejected} rejected + "
             f"{expired} expired")
    if args.metrics_out:
        os.makedirs(os.path.dirname(args.metrics_out) or ".", exist_ok=True)
        with open(args.metrics_out, "w") as f:
            json.dump(metrics, f, indent=1)
        print(f"metrics copied to {args.metrics_out}")

    print(f"OK: drain clean ({submitted} submitted = {delivered} delivered "
          f"+ {rejected} rejected + {expired} expired), light p99 isolated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
