#!/usr/bin/env python3
"""Regenerates tools/lint/tidy_baseline.json from a clang-tidy run.

Use after intentionally accepting a new warning (rare -- prefer fixing or
a targeted NOLINT with justification) or after fixing warnings, to
ratchet the baseline down so they cannot come back. Requires clang-tidy.

    python3 tools/lint/update_baseline.py --build-dir build
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import run_tidy  # noqa: E402


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path, default=Path("build"))
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2])
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent / "tidy_baseline.json")
    parser.add_argument("--cache-dir", type=Path, default=None)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    args = parser.parse_args(argv)

    counts = run_tidy.collect(args.build_dir, args.root.resolve(),
                              args.cache_dir, args.jobs, require=True)
    assert counts is not None  # require=True exits when tidy is missing
    ordered = {rel: dict(sorted(counts[rel].items())) for rel in sorted(counts)}
    args.baseline.write_text(json.dumps(ordered, indent=2) + "\n")
    total = sum(sum(per.values()) for per in ordered.values())
    print(f"update_baseline: wrote {args.baseline} "
          f"({len(ordered)} files, {total} accepted warnings)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
