#!/usr/bin/env python3
"""Project determinism + contract linter.

Rules (all scoped to the paper-reproduction discipline in DESIGN.md §7):

  D001  No ambient nondeterminism outside src/workloads/: bans
        std::random_device, rand()/srand(), and time-seeded rngs. Every
        random stream must derive from an explicit seed so runs replay
        bit-for-bit.
  D002  No iteration over std::unordered_map / std::unordered_set whose
        result can leak into output, accumulation, or rng state: bucket
        order is implementation-defined. Lookups are fine; range-for and
        .begin() traversal are flagged unless allowlisted with a
        justification.
  D003  No std::function on routing hot paths (src/routing/, src/mesh/):
        type-erased calls defeat inlining in the per-packet loops that
        bench_p1_throughput gates.
  C001  A .cpp that asserts preconditions (OBLV_REQUIRE / OBLV_EXPECTS)
        must document them in its paired header: at least one `\\pre`
        (or `Precondition:`) comment or an inline OBLV_EXPECTS.
  D004  No per-call container allocation inside route*_into bodies
        (src/routing/): a by-value std::vector local (or push_back onto
        one) defeats the zero-allocation contract of the scratch-threaded
        entry points -- route through RouteScratch buffers instead.
  D005  Every code path that drops or requeues a packet (src/fault/,
        src/simulator/) must increment a fault.* metric: a drop-tally
        bump, a kDropped status, or a backoff requeue with no
        OBLV_COUNTER_ADD("fault. nearby is an uncounted loss -- the
        graceful-degradation accounting (delivered + dropped == injected)
        silently lies when one of these sites forgets its counter.
  D006  No scalar Rng construction inside batch loops (src/parallel/,
        src/fault/, src/analysis/): seeding a fresh engine per loop
        iteration is exactly the per-packet cost the SoA lane rng
        (RngLanes, 8 streams per seeding sweep) amortizes away. The
        sanctioned scalar reference loops carry an allow() with the
        reason they must stay scalar.
  D007  No blocking I/O syscalls outside src/daemon/net*: raw
        read/write/recv/send/accept/connect/poll/select calls can stall
        a daemon thread forever on a dead peer. All socket I/O goes
        through the poll-bounded daemon::net helpers, which take an
        explicit timeout; the helpers themselves (src/daemon/net*) are
        the sanctioned site and annotate each raw call with an allow().
  D008  No naked std sync primitives (std::mutex / std::lock_guard /
        std::scoped_lock / std::unique_lock / std::condition_variable /
        std::shared_mutex and friends) outside
        src/util/thread_annotations.hpp: only the annotated oblv::Mutex
        family carries the capability attributes the clang thread-safety
        analysis checks, so a naked primitive is a lock the compiler
        cannot see -- exactly the bypass the lock-discipline gate
        (DESIGN.md section 13) exists to prevent.
  D009  std::atomic loads/stores with an explicit
        std::memory_order_relaxed on values that feed accounting
        contracts (daemon.unaccounted, fault.drops, delivered/dropped/
        rejected/submitted tallies) need a written justification:
        relaxed counters that gate `== 0` exit checks are a
        silent-undercount hazard unless some other synchronization
        (a join, a drain barrier) orders the writes before the read.
  D010  No direct EdgeLoadMap construction outside the LoadAccountant
        factory: a direct instance hard-codes exact O(E) accounting and
        bypasses the exact/sketch mode switch every measurement driver
        honors.
  D011  No errno branches in src/daemon/ outside the net*/chaos*
        helpers: transport errors reach the daemon as IoStatus, and the
        EINTR/EAGAIN/partial-I/O retry policy lives in the bounded
        daemon::net helpers (with the chaos layer spoofing at the same
        seam). An errno comparison anywhere else re-opens the scattered
        retry logic those helpers were written to contain.

Suppression: `// oblv-lint: allow(RULE) <justification>` on the flagged
line or within the three lines above it. The justification is mandatory.

The linter is pure-stdlib regex over comment-stripped sources so it runs
anywhere the repo builds. When python libclang bindings are importable
(`pip install libclang`, not required) D002 additionally resolves typedef
aliases of unordered containers; without them the regex engine alone is
authoritative and fully supported.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

try:  # optional refinement only; the regex engine is self-sufficient
    import clang.cindex  # type: ignore  # noqa: F401

    HAVE_LIBCLANG = True
except Exception:  # pragma: no cover - environment dependent
    HAVE_LIBCLANG = False

ALLOW_RE = re.compile(r"//\s*oblv-lint:\s*allow\((?P<rules>[A-Z0-9, ]+)\)(?P<why>.*)")
# How far above a flagged line an allow comment may sit.
ALLOW_REACH = 3

RULE_DOCS = {
    "D001": "ambient nondeterminism (random_device / rand / time seed)",
    "D002": "iteration over an unordered container (bucket order leaks)",
    "D003": "std::function on a routing hot path",
    "C001": "undocumented preconditions in paired header",
    "D004": "per-call container allocation in a route*_into hot path",
    "D005": "packet drop/requeue without a fault.* metric increment",
    "D006": "scalar per-iteration Rng construction in a batch loop",
    "D007": "blocking I/O syscall outside src/daemon/net*",
    "D008": "naked std sync primitive outside the annotations header",
    "D009": "relaxed atomic access to an accounting value",
    "D010": "direct EdgeLoadMap construction outside the LoadAccountant "
            "factory",
    "D011": "errno branch in src/daemon/ outside the net*/chaos* helpers",
    "A001": "allowlist comment without justification",
}


class Finding:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def render(self, root: Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"

    def as_json(self, root: Path) -> dict:
        try:
            rel = str(self.path.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(self.path)
        return {"rule": self.rule, "file": rel, "line": self.line,
                "message": self.message}


def collect_allowlist(lines: list[str]) -> dict[int, set[str]]:
    """Maps 1-based line numbers to the set of rules allowed there."""
    allowed: dict[int, set[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        if not m.group("why").strip():
            # An allow without justification is itself a finding; encode it
            # as a pseudo-rule the caller turns into a report.
            allowed.setdefault(i, set()).add("!nojustification")
            continue
        rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
        allowed.setdefault(i, set()).update(rules)
    return allowed


def is_allowed(allowed: dict[int, set[str]], line: int, rule: str) -> bool:
    for probe in range(max(1, line - ALLOW_REACH), line + 1):
        if rule in allowed.get(probe, set()):
            return True
    return False


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


# ---------------------------------------------------------------- D001 --

D001_PATTERNS = [
    (re.compile(r"std\s*::\s*random_device|\brandom_device\b"),
     "std::random_device is nondeterministic; derive Rng streams from an "
     "explicit seed"),
    (re.compile(r"(?<![\w:])srand\s*\("),
     "srand() seeds global C rand state; use the project Rng"),
    (re.compile(r"(?<![\w:.])rand\s*\(\s*\)"),
     "rand() draws from hidden global state; use the project Rng"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "wall-clock seeding breaks replay; thread an explicit seed through"),
]
D001_CLOCK_RE = re.compile(
    r"(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(")
D001_SEED_HINT_RE = re.compile(r"\bseed\b|\bRng\b|\brng\b", re.IGNORECASE)


def check_d001(path: Path, rel: str, code: str,
               allowed: dict[int, set[str]]) -> list[Finding]:
    if rel.startswith("src/workloads/") or "/workloads/" in rel:
        return []
    findings = []
    for pattern, why in D001_PATTERNS:
        for m in pattern.finditer(code):
            ln = line_of(code, m.start())
            if not is_allowed(allowed, ln, "D001"):
                findings.append(Finding("D001", path, ln, why))
    # clock::now() is fine for timing; it is a D001 only when it feeds a
    # seed or rng on the same line.
    for m in D001_CLOCK_RE.finditer(code):
        ln = line_of(code, m.start())
        line_text = code.splitlines()[ln - 1] if ln <= code.count("\n") + 1 else ""
        if D001_SEED_HINT_RE.search(line_text) and not is_allowed(allowed, ln, "D001"):
            findings.append(Finding(
                "D001", path, ln,
                "clock-derived seed breaks replay; thread an explicit seed"))
    return findings


# ---------------------------------------------------------------- D002 --

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def unordered_variables(code: str) -> set[str]:
    """Names of variables declared with an unordered container type."""
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        # Walk the template argument list to its matching '>'.
        i = m.end() - 1  # at '<'
        depth = 0
        n = len(code)
        while i < n:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        rest = code[i + 1:]
        im = IDENT_RE.match(rest.lstrip())
        if not im:
            continue
        tail = rest.lstrip()[im.end():].lstrip()
        # A declaration, not a nested template parameter or return type.
        if tail[:1] in {";", "(", "{", "=", ","}:
            names.add(im.group(0))
    return names


def check_d002(path: Path, code: str,
               allowed: dict[int, set[str]]) -> list[Finding]:
    names = unordered_variables(code)
    if not names:
        return []
    findings = []
    alternation = "|".join(re.escape(n) for n in sorted(names))
    range_for = re.compile(
        r"for\s*\([^;()]*?:\s*(?:\*?\s*)?(?P<name>" + alternation + r")\s*\)")
    iter_call = re.compile(
        r"\b(?P<name>" + alternation + r")\s*\.\s*c?begin\s*\(")
    for pattern, what in ((range_for, "range-for over"),
                          (iter_call, "iterator traversal of")):
        for m in pattern.finditer(code):
            ln = line_of(code, m.start())
            if is_allowed(allowed, ln, "D002"):
                continue
            findings.append(Finding(
                "D002", path, ln,
                f"{what} unordered container '{m.group('name')}': bucket "
                "order is implementation-defined; iterate a sorted view or "
                "justify with // oblv-lint: allow(D002)"))
    return findings


# ---------------------------------------------------------------- D003 --

D003_RE = re.compile(r"std\s*::\s*function\s*<")


def check_d003(path: Path, rel: str, code: str,
               allowed: dict[int, set[str]]) -> list[Finding]:
    if not ("src/routing/" in rel or rel.startswith("src/routing/")
            or "src/mesh/" in rel or rel.startswith("src/mesh/")):
        return []
    findings = []
    for m in D003_RE.finditer(code):
        ln = line_of(code, m.start())
        if not is_allowed(allowed, ln, "D003"):
            findings.append(Finding(
                "D003", path, ln,
                "std::function on a routing hot path defeats inlining; use "
                "a template parameter or function_ref-style callable"))
    return findings


# ---------------------------------------------------------------- D004 --

D004_FUNC_RE = re.compile(r"\b(?P<name>route\w*_into\w*)\s*\(")
D004_VECTOR_RE = re.compile(r"std\s*::\s*vector\s*<")
D004_QUALIFIER_RE = re.compile(r"\s*(?:const|noexcept|override|final)\b")


def _matching(code: str, start: int, open_ch: str, close_ch: str) -> int:
    """Index just past the delimiter matching code[start] (which must be
    open_ch), or -1 when unbalanced."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def route_into_bodies(code: str) -> list[tuple[int, int]]:
    """(start, end) spans of every route*_into function DEFINITION body.

    Call sites and declarations are skipped: a definition's parameter list
    is followed (after cv/noexcept/override qualifiers) by '{'.
    """
    bodies = []
    for m in D004_FUNC_RE.finditer(code):
        after_params = _matching(code, m.end() - 1, "(", ")")
        if after_params < 0:
            continue
        i = after_params
        while True:
            q = D004_QUALIFIER_RE.match(code, i)
            if not q:
                break
            i = q.end()
        while i < len(code) and code[i].isspace():
            i += 1
        if i >= len(code) or code[i] != "{":
            continue  # declaration or call site
        end = _matching(code, i, "{", "}")
        if end > 0:
            bodies.append((i, end))
    return bodies


def check_d004(path: Path, rel: str, code: str,
               allowed: dict[int, set[str]]) -> list[Finding]:
    if not ("src/routing/" in rel or rel.startswith("src/routing/")):
        return []
    findings = []
    for start, end in route_into_bodies(code):
        body = code[start:end]
        fresh: set[str] = set()
        for m in D004_VECTOR_RE.finditer(body):
            close = _matching(body, m.end() - 1, "<", ">")
            if close < 0:
                continue
            rest = body[close:].lstrip()
            if rest.startswith("&") or rest.startswith("*"):
                continue  # reference/pointer binding: no allocation here
            im = IDENT_RE.match(rest)
            if not im:
                continue
            tail = rest[im.end():].lstrip()
            if tail[:1] not in {";", "(", "{", "="}:
                continue  # nested template arg, cast, or return type
            fresh.add(im.group(0))
            ln = line_of(code, start + m.start())
            if not is_allowed(allowed, ln, "D004"):
                findings.append(Finding(
                    "D004", path, ln,
                    f"by-value std::vector local '{im.group(0)}' in a "
                    "route*_into body allocates per call; reuse a "
                    "RouteScratch buffer instead"))
        if fresh:
            grow = re.compile(
                r"\b(?P<name>" + "|".join(re.escape(n) for n in sorted(fresh))
                + r")\s*\.\s*(?:push_back|emplace_back)\s*\(")
            for m in grow.finditer(body):
                ln = line_of(code, start + m.start())
                if not is_allowed(allowed, ln, "D004"):
                    findings.append(Finding(
                        "D004", path, ln,
                        f"growing fresh vector '{m.group('name')}' inside a "
                        "route*_into body allocates per call; route through "
                        "RouteScratch"))
    return findings


# ---------------------------------------------------------------- D005 --

# Packet-loss / requeue events. Identifier paths may be member chains
# (result.dropped, state[i].wait_until).
D005_EVENTS = [
    (re.compile(r"\+\+\s*[\w.\[\]>()-]*\bdrop\w*|"
                r"[\w.\[\]>()-]*\bdrop\w*\s*\+\+"),
     "drop-tally increment"),
    (re.compile(r"(?P<lhs>[\w.\[\]>()-]*\bdrop\w*)\s*\+=\s*(?P<rhs>[^;]*)"),
     "drop-tally accumulation"),
    (re.compile(r"(?:=\s*|return\s+)FaultRouteStatus\s*::\s*kDropped"),
     "kDropped outcome"),
    (re.compile(r"(?:\.|->)\s*wait_until\s*=(?!=)"),
     "backoff requeue"),
]
D005_COUNTER_RE = re.compile(r'OBLV_COUNTER_ADD\(\s*"fault\.')
# How far (in lines, either direction) the metric bump may sit from the
# drop/requeue event it accounts for.
D005_WINDOW = 6
D005_DROP_IDENT_RE = re.compile(r"\bdrop\w*", re.IGNORECASE)


def check_d005(path: Path, rel: str, code: str, raw_lines: list[str],
               allowed: dict[int, set[str]]) -> list[Finding]:
    if path.suffix != ".cpp":
        return []
    if not (rel.startswith("src/fault/") or "/src/fault/" in rel
            or rel.startswith("src/simulator/")
            or "/src/simulator/" in rel):
        return []

    def counted_nearby(ln: int) -> bool:
        lo = max(0, ln - 1 - D005_WINDOW)
        hi = min(len(raw_lines), ln + D005_WINDOW)
        return any(D005_COUNTER_RE.search(raw_lines[i])
                   for i in range(lo, hi))

    findings = []
    for pattern, what in D005_EVENTS:
        for m in pattern.finditer(code):
            if what == "drop-tally accumulation" and D005_DROP_IDENT_RE.search(
                    m.group("rhs")):
                continue  # tally-to-tally merge, not a new drop event
            ln = line_of(code, m.start())
            if is_allowed(allowed, ln, "D005"):
                continue
            if counted_nearby(ln):
                continue
            findings.append(Finding(
                "D005", path, ln,
                f"{what} without an OBLV_COUNTER_ADD(\"fault.*\") within "
                f"{D005_WINDOW} lines: a packet left the network uncounted; "
                "bump the metric at the decision site or justify with "
                "// oblv-lint: allow(D005)"))
    return findings


# ---------------------------------------------------------------- D006 --

# Scalar engine construction inside loop bodies of the batch layers. A
# fresh Rng per iteration re-runs the splitmix64 seeding expansion per
# packet -- the cost RngLanes::seed_packets amortizes 8 lanes at a time
# (DESIGN.md section 10). Declarations match `Rng name ...`; references
# (`Rng&`) and RngLanes itself do not.
D006_DIRS = ("src/parallel/", "src/fault/", "src/analysis/")
D006_LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
D006_RNG_RE = re.compile(r"\bRng\s+\w+\s*[({=]|\bpacket_rng\s*\(")


def loop_body_spans(code: str) -> list[tuple[int, int]]:
    """(start, end) spans of every braced for/while body."""
    spans = []
    for m in D006_LOOP_RE.finditer(code):
        after_cond = _matching(code, m.end() - 1, "(", ")")
        if after_cond < 0:
            continue
        i = after_cond
        while i < len(code) and code[i].isspace():
            i += 1
        if i >= len(code) or code[i] != "{":
            continue  # single-statement body cannot declare an engine
        end = _matching(code, i, "{", "}")
        if end > 0:
            spans.append((i, end))
    return spans


def check_d006(path: Path, rel: str, code: str,
               allowed: dict[int, set[str]]) -> list[Finding]:
    if path.suffix != ".cpp":
        return []
    if not any(rel.startswith(d) or f"/{d}" in rel for d in D006_DIRS):
        return []
    findings = []
    seen: set[int] = set()
    for start, end in loop_body_spans(code):
        for m in D006_RNG_RE.finditer(code, start, end):
            ln = line_of(code, m.start())
            if ln in seen or is_allowed(allowed, ln, "D006"):
                continue
            seen.add(ln)
            findings.append(Finding(
                "D006", path, ln,
                "scalar Rng constructed inside a batch loop: per-iteration "
                "engine seeding is what RngLanes amortizes (DESIGN.md "
                "section 10); hoist the engine, feed the lane rng, or "
                "justify the scalar reference path with "
                "// oblv-lint: allow(D006)"))
    return findings


# ---------------------------------------------------------------- D007 --

# The one sanctioned home for raw socket/file syscalls. Everything else
# must call the bounded daemon::net helpers.
D007_EXEMPT_PREFIX = "src/daemon/net"
# Global-qualified calls are unambiguous syscall references; read/write
# are only matched in this form (bare `read(`/`write(` collide with too
# many project identifiers to flag soundly).
D007_QUALIFIED_RE = re.compile(
    r"::\s*(?P<name>read|write|recv|send|recvfrom|sendto|accept4?|connect|"
    r"poll|ppoll|select|pselect)\s*\(")
# Rarer names are also flagged unqualified (not after an identifier
# character, scope operator, `.`, or `->`).
D007_BARE_RE = re.compile(
    r"(?<![\w:.>])(?P<name>recv|recvfrom|sendto|accept4|poll|ppoll|"
    r"pselect)\s*\(")


def check_d007(path: Path, rel: str, code: str,
               allowed: dict[int, set[str]]) -> list[Finding]:
    if not (rel.startswith("src/") or "/src/" in rel):
        return []
    if rel.startswith(D007_EXEMPT_PREFIX) or f"/{D007_EXEMPT_PREFIX}" in rel:
        return []
    findings = []
    seen: set[int] = set()
    for pattern in (D007_QUALIFIED_RE, D007_BARE_RE):
        for m in pattern.finditer(code):
            ln = line_of(code, m.start())
            if ln in seen or is_allowed(allowed, ln, "D007"):
                continue
            seen.add(ln)
            findings.append(Finding(
                "D007", path, ln,
                f"raw '{m.group('name')}' syscall outside src/daemon/net*: "
                "it can block a thread forever on a dead peer; use the "
                "poll-bounded daemon::net helpers (read_frame / write_all / "
                "wait_readable take an explicit timeout) or justify with "
                "// oblv-lint: allow(D007)"))
    return findings


# ---------------------------------------------------------------- D008 --

# The one file allowed to name the raw std primitives: it wraps them in
# the capability-annotated oblv::Mutex family (DESIGN.md section 13).
D008_EXEMPT = "src/util/thread_annotations.hpp"
D008_RE = re.compile(
    r"std\s*::\s*(?P<name>mutex|timed_mutex|recursive_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|lock_guard|"
    r"scoped_lock|unique_lock|shared_lock|condition_variable|"
    r"condition_variable_any)\b")


def check_d008(path: Path, rel: str, code: str,
               allowed: dict[int, set[str]]) -> list[Finding]:
    if not (rel.startswith("src/") or "/src/" in rel):
        return []
    if rel == D008_EXEMPT or rel.endswith("/" + D008_EXEMPT):
        return []
    findings = []
    seen: set[int] = set()
    for m in D008_RE.finditer(code):
        ln = line_of(code, m.start())
        if ln in seen or is_allowed(allowed, ln, "D008"):
            continue
        seen.add(ln)
        findings.append(Finding(
            "D008", path, ln,
            f"naked std::{m.group('name')} is a lock the thread-safety "
            "analysis cannot see; use oblv::Mutex / oblv::MutexLock / "
            "oblv::CondVar from util/thread_annotations.hpp (and GUARDED_BY "
            "the data), or justify with // oblv-lint: allow(D008)"))
    return findings


# ---------------------------------------------------------------- D009 --

# Accounting values: the counters whose sums back the conservation
# contracts (daemon `unaccounted == 0` drain check, fault-layer
# `delivered + dropped == injected`). A relaxed read of one of these is
# only sound when some other synchronization orders the writers first.
D009_ACCT_RE = re.compile(
    r"unaccounted|submit|deliver|reject|admit|offered|drop|inject|tall",
    re.IGNORECASE)
D009_RE = re.compile(
    r"(?P<obj>[A-Za-z_]\w*(?:(?:\.|->|::)[A-Za-z_]\w*)*)"
    r"\s*(?:\.|->)\s*(?:load|store)\s*\([^;]*?memory_order_relaxed")


def check_d009(path: Path, rel: str, code: str,
               allowed: dict[int, set[str]]) -> list[Finding]:
    if not (rel.startswith("src/") or "/src/" in rel):
        return []
    findings = []
    seen: set[int] = set()
    for m in D009_RE.finditer(code):
        if not D009_ACCT_RE.search(m.group("obj")):
            continue
        ln = line_of(code, m.start())
        if ln in seen or is_allowed(allowed, ln, "D009"):
            continue
        seen.add(ln)
        findings.append(Finding(
            "D009", path, ln,
            f"relaxed atomic access to accounting value '{m.group('obj')}' "
            "can silently undercount the conservation checks; state the "
            "ordering argument (join / drain barrier) with "
            "// oblv-lint: allow(D009) or drop the explicit relaxed order"))
    return findings


# ---------------------------------------------------------------- D010 --

# Direct EdgeLoadMap construction commits the call site to O(E) memory
# and hard-codes exact accounting, bypassing the exact/sketch mode switch
# (AccountingOptions) every measurement driver honors. New accounting
# state comes from LoadAccountant::create; the few sanctioned direct uses
# (the factory's own exact backend, the heatmap-feeding measure paths)
# carry an allow() with the reason they must stay exact.
D010_RES = [
    re.compile(r"\bEdgeLoadMap\s+\w+\s*[;({=]"),       # locals and members
    re.compile(r"\bmake_unique\s*<\s*EdgeLoadMap\b"),  # heap construction
    re.compile(r"\bnew\s+EdgeLoadMap\b"),
]


def check_d010(path: Path, rel: str, code: str,
               allowed: dict[int, set[str]]) -> list[Finding]:
    if not (rel.startswith("src/") or "/src/" in rel):
        return []
    findings = []
    seen: set[int] = set()
    for regex in D010_RES:
        for m in regex.finditer(code):
            ln = line_of(code, m.start())
            if ln in seen or is_allowed(allowed, ln, "D010"):
                continue
            seen.add(ln)
            findings.append(Finding(
                "D010", path, ln,
                "direct EdgeLoadMap construction bypasses the exact/sketch "
                "accounting switch; create accounting state through "
                "LoadAccountant::create(mesh, mode, config), or justify the "
                "exact-only use with // oblv-lint: allow(D010)"))
    return findings


# ---------------------------------------------------------------- D011 --

# errno interpretation is transport policy. After the resilience pass,
# every EINTR/EAGAIN/partial-I/O decision in the daemon lives in the
# bounded net helpers (src/daemon/net*), and the chaos fault layer
# (src/daemon/chaos*) spoofs errors at that same seam. An errno branch
# anywhere else in src/daemon/ re-opens the scattered retry logic those
# helpers were written to contain -- callers react to IoStatus, never to
# raw errno.
D011_EXEMPT_PREFIXES = ("src/daemon/net", "src/daemon/chaos")
D011_RE = re.compile(
    r"\berrno\s*(?:==|!=)|(?:==|!=)\s*errno\b|\bswitch\s*\(\s*errno\b")


def check_d011(path: Path, rel: str, code: str,
               allowed: dict[int, set[str]]) -> list[Finding]:
    if not (rel.startswith("src/daemon/") or "/src/daemon/" in rel):
        return []
    for prefix in D011_EXEMPT_PREFIXES:
        if rel.startswith(prefix) or f"/{prefix}" in rel:
            return []
    findings = []
    seen: set[int] = set()
    for m in D011_RE.finditer(code):
        ln = line_of(code, m.start())
        if ln in seen or is_allowed(allowed, ln, "D011"):
            continue
        seen.add(ln)
        findings.append(Finding(
            "D011", path, ln,
            "errno branch outside src/daemon/net*/chaos*: transport errors "
            "reach the daemon as IoStatus and the EINTR/EAGAIN retry policy "
            "lives in the bounded net helpers; branch on the helper result "
            "or justify with // oblv-lint: allow(D011)"))
    return findings


# ---------------------------------------------------------------- C001 --

C001_ASSERT_RE = re.compile(r"\bOBLV_(?:REQUIRE|EXPECTS)\s*\(")
C001_DOC_RE = re.compile(r"\\pre\b|\bPrecondition:|\bOBLV_EXPECTS\s*\(")


def check_c001(path: Path, raw_text: str) -> list[Finding]:
    if path.suffix != ".cpp":
        return []
    code = strip_comments_and_strings(raw_text)
    if not C001_ASSERT_RE.search(code):
        return []
    header = path.with_suffix(".hpp")
    if not header.exists():
        return []
    header_text = header.read_text(encoding="utf-8", errors="replace")
    if C001_DOC_RE.search(header_text):
        return []
    return [Finding(
        "C001", header, 1,
        f"{path.name} asserts preconditions but this header documents none; "
        "add a \\pre comment (or OBLV_EXPECTS) to the declarations")]


# ----------------------------------------------------------------- main --

def lint_file(path: Path, root: Path) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    allowed = collect_allowlist(raw_lines)
    code = strip_comments_and_strings(raw)
    try:
        rel = str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        rel = str(path)
    rel = rel.replace("\\", "/")

    findings: list[Finding] = []
    for ln, rules in allowed.items():
        if "!nojustification" in rules:
            findings.append(Finding(
                "A001", path, ln,
                "oblv-lint allow() needs a justification after the rule list"))
    findings += check_d001(path, rel, code, allowed)
    findings += check_d002(path, code, allowed)
    findings += check_d003(path, rel, code, allowed)
    findings += check_d004(path, rel, code, allowed)
    findings += check_d005(path, rel, code, raw_lines, allowed)
    findings += check_d006(path, rel, code, allowed)
    findings += check_d007(path, rel, code, allowed)
    findings += check_d008(path, rel, code, allowed)
    findings += check_d009(path, rel, code, allowed)
    findings += check_d010(path, rel, code, allowed)
    findings += check_d011(path, rel, code, allowed)
    findings += check_c001(path, raw)
    return findings


def default_files(root: Path) -> list[Path]:
    src = root / "src"
    return sorted(p for p in src.rglob("*") if p.suffix in (".hpp", ".cpp"))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="files to lint (default: all of <root>/src)")
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root for scoping and display")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array")
    parser.add_argument("--json-out", type=Path, metavar="FILE",
                        help="additionally write the findings JSON to FILE "
                             "(written even when clean, for CI artifacts)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    files = args.files or default_files(args.root)
    if not files:
        print("oblv_lint: no input files", file=sys.stderr)
        return 2
    if args.verbose:
        engine = "libclang+regex" if HAVE_LIBCLANG else "regex"
        print(f"oblv_lint: {engine} engine, {len(files)} files")

    findings: list[Finding] = []
    for path in files:
        if not path.exists():
            print(f"oblv_lint: no such file: {path}", file=sys.stderr)
            return 2
        findings += lint_file(path, args.root)

    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    if args.json_out:
        args.json_out.write_text(
            json.dumps([f.as_json(args.root) for f in findings], indent=2)
            + "\n")
    if args.json:
        print(json.dumps([f.as_json(args.root) for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render(args.root))
        if findings:
            print(f"oblv_lint: {len(findings)} finding(s)")
        elif args.verbose:
            print("oblv_lint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
