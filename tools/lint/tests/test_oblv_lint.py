#!/usr/bin/env python3
"""Self-tests for tools/lint/oblv_lint.py.

Each fixture under fixtures/src/ mirrors the repo layout so the rules'
path scoping (D001 workloads exemption, D003 routing/mesh restriction)
is exercised exactly as in production. Run directly or via ctest:

    python3 tools/lint/tests/test_oblv_lint.py
"""

from __future__ import annotations

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
import oblv_lint  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def lint(rel: str) -> list[oblv_lint.Finding]:
    return oblv_lint.lint_file(FIXTURES / rel, FIXTURES)


def rules_and_lines(findings: list[oblv_lint.Finding]) -> set[tuple[str, int]]:
    return {(f.rule, f.line) for f in findings}


class TestD001(unittest.TestCase):
    def test_every_pattern_fires(self):
        found = rules_and_lines(lint("src/analysis/d001_rng.cpp"))
        self.assertIn(("D001", 7), found)   # std::random_device
        self.assertIn(("D001", 12), found)  # srand
        self.assertIn(("D001", 13), found)  # rand()
        self.assertIn(("D001", 14), found)  # time(nullptr)

    def test_allowlist_suppresses(self):
        findings = lint("src/analysis/d001_rng.cpp")
        suppressed_region = [f for f in findings if 19 <= f.line <= 23]
        self.assertEqual(suppressed_region, [])

    def test_comments_and_identifiers_do_not_fire(self):
        findings = lint("src/analysis/d001_rng.cpp")
        self.assertTrue(all(f.line < 25 for f in findings),
                        [f.render(FIXTURES) for f in findings])

    def test_workloads_exempt(self):
        self.assertEqual(lint("src/workloads/d001_exempt.cpp"), [])


class TestD002(unittest.TestCase):
    def test_range_for_and_begin_fire(self):
        found = rules_and_lines(lint("src/analysis/d002_iteration.cpp"))
        self.assertIn(("D002", 11), found)  # range-for
        self.assertIn(("D002", 20), found)  # .begin()
        self.assertIn(("D002", 55), found)  # multi-line declaration

    def test_allowlist_lookups_and_ordered_do_not_fire(self):
        findings = lint("src/analysis/d002_iteration.cpp")
        lines = {f.line for f in findings}
        self.assertEqual(lines, {11, 20, 55},
                         [f.render(FIXTURES) for f in findings])


class TestD003(unittest.TestCase):
    def test_fires_on_routing_paths_only(self):
        found = rules_and_lines(lint("src/routing/d003_hot_path.cpp"))
        self.assertEqual(found, {("D003", 6)})
        self.assertEqual(lint("src/analysis/d003_scoped_out.cpp"), [])

    def test_allowlist_suppresses(self):
        findings = lint("src/routing/d003_hot_path.cpp")
        self.assertTrue(all(f.line == 6 for f in findings))


class TestC001(unittest.TestCase):
    def test_undocumented_header_fires(self):
        findings = lint("src/util/widget.cpp")
        self.assertEqual([f.rule for f in findings], ["C001"])
        self.assertTrue(str(findings[0].path).endswith("widget.hpp"))

    def test_documented_header_is_clean(self):
        self.assertEqual(lint("src/util/gadget.cpp"), [])


class TestD004(unittest.TestCase):
    def test_fresh_vector_and_growth_fire(self):
        found = rules_and_lines(lint("src/routing/d004_route_into.cpp"))
        self.assertIn(("D004", 13), found)  # by-value local
        self.assertIn(("D004", 14), found)  # push_back on it

    def test_scratch_reuse_allow_and_call_sites_do_not_fire(self):
        findings = lint("src/routing/d004_route_into.cpp")
        lines = {f.line for f in findings}
        self.assertEqual(lines, {13, 14},
                         [f.render(FIXTURES) for f in findings])

    def test_scoped_to_routing(self):
        # The same patterns outside src/routing/ are not D004's business.
        self.assertEqual(
            [f for f in lint("src/analysis/d003_scoped_out.cpp")
             if f.rule == "D004"], [])


class TestD005(unittest.TestCase):
    def test_uncounted_drop_requeue_and_status_fire(self):
        found = rules_and_lines(lint("src/fault/d005_drop.cpp"))
        self.assertIn(("D005", 12), found)  # bare tally bump
        self.assertIn(("D005", 41), found)  # kDropped with no counter
        self.assertIn(("D005", 50), found)  # requeue with no counter
        self.assertIn(("D005", 78), found)  # postfix bump

    def test_counted_allowed_merge_and_decl_do_not_fire(self):
        findings = lint("src/fault/d005_drop.cpp")
        lines = {f.line for f in findings}
        self.assertEqual(lines, {12, 41, 50, 78},
                         [f.render(FIXTURES) for f in findings])

    def test_scoped_to_fault_and_simulator(self):
        self.assertEqual(lint("src/analysis/d005_scoped_out.cpp"), [])


class TestD006(unittest.TestCase):
    def test_for_and_while_constructions_fire(self):
        found = rules_and_lines(lint("src/parallel/d006_scalar_rng.cpp"))
        self.assertIn(("D006", 6), found)   # packet_rng in a for body
        self.assertIn(("D006", 11), found)  # direct Rng ctor in a while body

    def test_allow_hoisted_lanes_and_references_do_not_fire(self):
        findings = lint("src/parallel/d006_scalar_rng.cpp")
        lines = {f.line for f in findings}
        self.assertEqual(lines, {6, 11},
                         [f.render(FIXTURES) for f in findings])

    def test_scoped_to_batch_layers(self):
        # src/routing/ scalar loops are the per-packet engine itself,
        # not D006's business.
        self.assertEqual(
            [f for f in lint("src/routing/d004_route_into.cpp")
             if f.rule == "D006"], [])


class TestD007(unittest.TestCase):
    def test_qualified_and_bare_syscalls_fire(self):
        found = rules_and_lines(lint("src/daemon/d007_syscalls.cpp"))
        self.assertIn(("D007", 8), found)   # ::read
        self.assertIn(("D007", 12), found)  # ::send
        self.assertIn(("D007", 16), found)  # bare poll(

    def test_allow_helpers_and_lookalikes_do_not_fire(self):
        findings = lint("src/daemon/d007_syscalls.cpp")
        lines = {f.line for f in findings}
        self.assertEqual(lines, {8, 12, 16},
                         [f.render(FIXTURES) for f in findings])

    def test_net_files_exempt_by_path(self):
        self.assertEqual(lint("src/daemon/net_exempt.cpp"), [])

    def test_covers_all_of_src(self):
        found = rules_and_lines(lint("src/analysis/d007_everywhere.cpp"))
        self.assertIn(("D007", 8), found)  # ::write in the analysis layer


class TestD008(unittest.TestCase):
    def test_naked_primitives_fire(self):
        found = rules_and_lines(lint("src/daemon/d008_naked_sync.cpp"))
        self.assertIn(("D008", 7), found)   # std::mutex
        self.assertIn(("D008", 8), found)   # std::condition_variable
        self.assertIn(("D008", 11), found)  # std::lock_guard (one per line)
        self.assertIn(("D008", 15), found)  # std::scoped_lock
        self.assertIn(("D008", 19), found)  # std::shared_mutex

    def test_allow_wrappers_and_comments_do_not_fire(self):
        findings = lint("src/daemon/d008_naked_sync.cpp")
        lines = {f.line for f in findings}
        self.assertEqual(lines, {7, 8, 11, 15, 19},
                         [f.render(FIXTURES) for f in findings])

    def test_annotations_header_exempt_by_path(self):
        self.assertEqual(lint("src/util/thread_annotations.hpp"), [])


class TestD009(unittest.TestCase):
    def test_relaxed_accounting_access_fires(self):
        found = rules_and_lines(lint("src/daemon/d009_relaxed_accounting.cpp"))
        self.assertIn(("D009", 21), found)  # relaxed load of submitted tally
        self.assertIn(("D009", 22), found)  # relaxed load of dropped tally
        self.assertIn(("D009", 27), found)  # relaxed store

    def test_allow_acquire_rmw_and_nonaccounting_do_not_fire(self):
        findings = lint("src/daemon/d009_relaxed_accounting.cpp")
        lines = {f.line for f in findings}
        self.assertEqual(lines, {21, 22, 27},
                         [f.render(FIXTURES) for f in findings])


class TestD010(unittest.TestCase):
    def test_direct_construction_fires(self):
        found = rules_and_lines(lint("src/analysis/d010_edge_load_map.cpp"))
        self.assertIn(("D010", 9), found)   # local
        self.assertIn(("D010", 10), found)  # copy-init
        self.assertIn(("D010", 11), found)  # make_unique
        self.assertIn(("D010", 12), found)  # new
        self.assertIn(("D010", 19), found)  # member declaration

    def test_factory_allow_refs_and_qualified_names_do_not_fire(self):
        findings = lint("src/analysis/d010_edge_load_map.cpp")
        lines = {f.line for f in findings}
        self.assertEqual(lines, {9, 10, 11, 12, 19},
                         [f.render(FIXTURES) for f in findings])


class TestD011(unittest.TestCase):
    def test_errno_branches_fire(self):
        found = rules_and_lines(lint("src/daemon/d011_errno.cpp"))
        self.assertIn(("D011", 12), found)  # errno == EINTR
        self.assertIn(("D011", 15), found)  # reversed comparison
        self.assertIn(("D011", 18), found)  # switch (errno)

    def test_allow_and_lookalikes_do_not_fire(self):
        findings = lint("src/daemon/d011_errno.cpp")
        lines = {f.line for f in findings}
        self.assertEqual(lines, {12, 15, 18},
                         [f.render(FIXTURES) for f in findings])

    def test_chaos_files_exempt_by_path(self):
        self.assertEqual(lint("src/daemon/chaos_errno_exempt.cpp"), [])

    def test_net_files_exempt_by_path(self):
        self.assertEqual(
            [f for f in lint("src/daemon/net_exempt.cpp")
             if f.rule == "D011"], [])

    def test_scoped_to_daemon(self):
        self.assertEqual(lint("src/util/d011_scoped_out.cpp"), [])


class TestA001(unittest.TestCase):
    def test_allow_without_justification_flagged_and_ineffective(self):
        found = rules_and_lines(lint("src/util/bad_allow.cpp"))
        self.assertIn(("A001", 8), found)
        self.assertIn(("D002", 9), found)  # the bad allow does not suppress


class TestRepoIsClean(unittest.TestCase):
    def test_src_tree_has_no_findings(self):
        root = Path(__file__).resolve().parents[3]
        findings = []
        for path in oblv_lint.default_files(root):
            findings += oblv_lint.lint_file(path, root)
        self.assertEqual([f.render(root) for f in findings], [])


if __name__ == "__main__":
    unittest.main()
