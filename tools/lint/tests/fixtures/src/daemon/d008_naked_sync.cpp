// D008 fixture: naked std sync primitives anywhere under src/ (outside
// the annotations header) must be flagged; the oblv wrappers, comments,
// and justified interop sites must not.

namespace oblivious {

std::mutex naked_mu;
std::condition_variable naked_cv;

void locked_update() {
  std::lock_guard<std::mutex> lock(naked_mu);
}

void scoped_update() {
  std::scoped_lock lock(naked_mu);
}

void shared_read() {
  std::shared_mutex naked_rw;
}

// oblv-lint: allow(D008) third-party callback interop hands us a
// std::unique_lock; the discipline at this boundary is audited by hand.
void allowed_site(std::unique_lock<std::mutex>& lock);

void wrapped_fine() {
  oblv::Mutex mu;
  oblv::MutexLock lock(mu);
  // std::mutex named in a comment must not fire.
}

}  // namespace oblivious
