// Exempt by path prefix: src/daemon/chaos* spoofs transport errors at
// the net seam, so errno branching here is sanctioned and D011 must
// stay quiet.
#include <cerrno>

namespace fixture {

bool injected_reset_took() {
  errno = 104;  // ECONNRESET spoof for the fault point
  return errno == 104;
}

}  // namespace fixture
