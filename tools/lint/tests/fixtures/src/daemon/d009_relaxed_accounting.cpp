// D009 fixture: an explicitly-relaxed load/store on an accounting
// counter needs a written ordering justification; acquire loads,
// relaxed RMWs, and non-accounting atomics are not D009's business.

namespace oblivious {

struct Daemon {
  std::atomic<unsigned long long> packets_submitted_{0};
  std::atomic<unsigned long long> packets_dropped_{0};
  std::atomic<unsigned long long> packets_delivered_{0};
  std::atomic<unsigned long long> generation_{0};
};

struct Stats {
  unsigned long long submitted = 0;
  unsigned long long dropped = 0;
};

Stats snapshot_bad(const Daemon& d) {
  Stats s;
  s.submitted = d.packets_submitted_.load(std::memory_order_relaxed);
  s.dropped = d.packets_dropped_.load(std::memory_order_relaxed);
  return s;
}

void reset_bad(Daemon& d) {
  d.packets_delivered_.store(0, std::memory_order_relaxed);
}

Stats snapshot_ok(const Daemon& d) {
  Stats s;
  // oblv-lint: allow(D009) drain-synchronized snapshot: the caller
  // joins every worker first, ordering the fetch_adds before these.
  s.submitted = d.packets_submitted_.load(std::memory_order_relaxed);
  s.dropped = d.packets_dropped_.load(std::memory_order_relaxed);
  return s;
}

unsigned long long fine_cases(Daemon& d) {
  unsigned long long a =
      d.packets_submitted_.load(std::memory_order_acquire);
  d.packets_dropped_.fetch_add(1, std::memory_order_relaxed);
  return a + d.generation_.load(std::memory_order_relaxed);
}

}  // namespace oblivious
