// D007 fixture: files under src/daemon/net* are the sanctioned syscall
// site and are exempt by path, no allow() needed.
#include <cstddef>

namespace fixture {

int transport_read(int fd, char* buf, std::size_t n) {
  return static_cast<int>(::read(fd, buf, n));
}

int transport_poll(void* fds) {
  return poll(fds, 1, 50);
}

}  // namespace fixture
