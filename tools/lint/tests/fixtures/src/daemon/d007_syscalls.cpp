// D007 fixture: raw blocking syscalls in daemon code outside net* must
// be flagged; allow()-annotated sites and net:: helper calls are fine.
#include <cstddef>

namespace fixture {

int do_read(int fd, char* buf, std::size_t n) {
  return static_cast<int>(::read(fd, buf, n));  // line 8: flagged
}

int do_send(int fd, const char* buf, std::size_t n) {
  return static_cast<int>(::send(fd, buf, n, 0));  // line 12: flagged
}

int do_poll_bare(void* fds) {
  return poll(fds, 1, -1);  // line 16: flagged even unqualified
}

// oblv-lint: allow(D007) reactor setup is the sanctioned blocking site here
int sanctioned(int fd, char* buf, std::size_t n) {
  return static_cast<int>(::read(fd, buf, n));  // line 21: allowed above
}

// Calls through the bounded helpers and lookalike identifiers never fire.
int read_frame(int fd);
int not_a_syscall(int fd) {
  int polled = read_frame(fd);  // helper call, not a syscall
  int send_count = polled;      // 'send' inside an identifier
  return send_count;
}

struct Socket {
  int send(const char* buf, std::size_t n);
};
int method_call(Socket& s, const char* buf, std::size_t n) {
  return s.send(buf, n);  // member call, not the libc symbol
}

}  // namespace fixture
