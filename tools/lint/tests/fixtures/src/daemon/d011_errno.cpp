// D011 fixture: raw errno branching outside the net*/chaos* helpers.
// The daemon proper reacts to IoStatus from the bounded helpers; errno
// interpretation re-opened here is exactly what the rule catches.
#include <cerrno>

namespace fixture {

int last_io_result();

int poll_for_work() {
  const int rc = last_io_result();
  if (rc < 0 && errno == EINTR) {  // flagged: direct comparison
    return 0;
  }
  if (EAGAIN == errno) {  // flagged: reversed comparison
    return 0;
  }
  switch (errno) {  // flagged: errno dispatch
    default:
      return -1;
  }
}

int my_errno_counter();  // lookalike identifier: must not fire

int sanctioned_probe() {
  const int rc = last_io_result();
  // oblv-lint: allow(D011) startup-only probe: the result is logged once
  // before the bounded helpers take over; there is no retry loop here
  if (rc < 0 && errno != EINTR) return -1;
  return rc;
}

}  // namespace fixture
