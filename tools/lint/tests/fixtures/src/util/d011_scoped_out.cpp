// Outside src/daemon/: errno branching here is not D011's business
// (strtol-style APIs report through errno by design).
#include <cerrno>

namespace fixture {

bool parse_overflowed() {
  return errno == ERANGE;
}

}  // namespace fixture
