// Fixture mirror of the real src/util/thread_annotations.hpp: the one
// sanctioned home for the raw std primitives that D008 bans everywhere
// else under src/.

namespace oblv {

class Mutex {
  std::mutex mu_;
};

class CondVar {
  std::condition_variable cv_;
};

}  // namespace oblv
