// Fixture: an allowlist comment without a justification is itself flagged.
#include <unordered_map>

int no_reason_given() {
  std::unordered_map<int, int> m;
  m[1] = 2;
  int total = 0;
  // oblv-lint: allow(D002)
  for (const auto& [k, v] : m) total += v;
  return total;
}
