// Fixture header WITHOUT precondition documentation: C001 fires because
// widget.cpp asserts preconditions.
#pragma once

int widget_frob(int level);
