// Fixture header WITH precondition documentation: C001 stays quiet.
#pragma once

// \pre level >= 0.
int gadget_frob(int level);
