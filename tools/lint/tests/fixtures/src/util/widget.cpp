#include "widget.hpp"

#define OBLV_REQUIRE(cond, msg) ((void)0)

int widget_frob(int level) {
  OBLV_REQUIRE(level >= 0, "level must be non-negative");
  return level * 2;
}
