// D005 is scoped to src/fault/ and src/simulator/: this analysis-side
// tally aggregates already-counted router outcomes and must not fire.
#include <cstdint>

void aggregate(std::int64_t& dropped) { ++dropped; }
