// Fixture: D002 unordered-container iteration detection.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::int64_t sum_loads() {
  std::unordered_map<int, std::int64_t> load;
  load[3] = 7;
  std::int64_t total = 0;
  for (const auto& [edge, count] : load) {  // line 11: fires D002
    total += count;
  }
  return total;
}

int first_bucket() {
  std::unordered_set<int> seen;
  seen.insert(1);
  return *seen.begin();  // line 20: fires D002
}

std::int64_t justified_sum() {
  std::unordered_map<int, std::int64_t> load;
  load[3] = 7;
  std::int64_t total = 0;
  // Addition commutes, so bucket order cannot change the total.
  // oblv-lint: allow(D002) commutative accumulation
  for (const auto& [edge, count] : load) {  // suppressed
    total += count;
  }
  return total;
}

bool lookups_are_fine(int key) {
  std::unordered_map<int, int> index;
  index[1] = 2;
  const auto it = index.find(key);  // lookup: no finding
  return it != index.end() && index.count(key) > 0;
}

std::int64_t ordered_is_fine(const std::vector<int>& xs) {
  std::int64_t total = 0;
  for (const int x : xs) total += x;  // ordered container: no finding
  return total;
}

// A declaration spanning lines must still register the variable name.
std::int64_t multiline_decl() {
  std::unordered_map<std::int64_t,
                     std::pair<int, std::int64_t>>
      crossings;
  crossings[0] = {1, 2};
  std::int64_t total = 0;
  for (const auto& [key, entry] : crossings) {  // line 55: fires D002
    total += entry.second;
  }
  return total;
}
