// D007 fixture: the rule covers all of src/, not just src/daemon/ -- a
// stray blocking syscall in the analysis layer is flagged too.
#include <cstddef>

namespace fixture {

int sneaky(int fd, char* buf, std::size_t n) {
  return static_cast<int>(::write(fd, buf, n));  // line 8: flagged
}

}  // namespace fixture
