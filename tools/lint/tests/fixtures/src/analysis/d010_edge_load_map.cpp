// D010 fixture: direct EdgeLoadMap construction outside the factory.
#include "analysis/congestion.hpp"
#include "analysis/sketch/load_accountant.hpp"

namespace oblivious {

void fires() {
  const Mesh mesh({4, 4});
  EdgeLoadMap local(mesh);                            // fires: local
  EdgeLoadMap defaulted = EdgeLoadMap(mesh);          // fires: copy-init
  auto heap = std::make_unique<EdgeLoadMap>(mesh);    // fires: make_unique
  auto raw = new EdgeLoadMap(mesh);                   // fires: new
  (void)local;
  (void)heap;
  delete raw;
}

struct Holder {
  EdgeLoadMap loads_;  // fires: member declaration
};

void sanctioned(const Mesh& mesh) {
  // The mode switch is the sanctioned path.
  auto accountant = LoadAccountant::create(mesh, AccountingMode::kExact);
  // oblv-lint: allow(D010) heatmap rendering needs the dense exact array
  EdgeLoadMap dense(mesh);
  (void)dense;
}

void not_construction(const EdgeLoadMap& by_ref, EdgeLoadMap* by_ptr) {
  // References, pointers, and qualified names are not construction.
  (void)by_ref;
  (void)by_ptr;
  EdgeLoadMap::static_like_mention();
}

}  // namespace oblivious
