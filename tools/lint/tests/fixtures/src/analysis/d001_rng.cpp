// Fixture: every D001 pattern, plus suppression and non-matches.
#include <cstdlib>
#include <ctime>
#include <random>

int ambient_entropy() {
  std::random_device rd;  // line 7: fires D001
  return static_cast<int>(rd());
}

void seed_globals() {
  srand(42);                        // line 12: fires D001
  int x = rand();                   // line 13: fires D001
  long t = time(nullptr);           // line 14: fires D001
  (void)x;
  (void)t;
}

int justified_entropy() {
  // oblv-lint: allow(D001) fixture demonstrating a justified suppression
  std::random_device rd;  // suppressed by the allow above
  return static_cast<int>(rd());
}

// A comment mentioning std::random_device and rand() must not fire.
int not_actually_random() {
  int operand = 1;   // identifier containing "rand" must not fire
  int strand = 2;    // same
  return operand + strand;
}
