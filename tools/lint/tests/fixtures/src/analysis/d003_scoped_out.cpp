// Fixture: std::function outside routing/mesh is not a D003.
#include <functional>

using Callback = std::function<void()>;  // analysis/: no finding

void run(const Callback& cb) { cb(); }
