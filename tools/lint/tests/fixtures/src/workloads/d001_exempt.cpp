// Fixture: src/workloads/ is exempt from D001 (generators may use any
// entropy source; determinism is enforced at the routing layer).
#include <random>

int workload_entropy() {
  std::random_device rd;  // exempt: no finding
  return static_cast<int>(rd());
}
