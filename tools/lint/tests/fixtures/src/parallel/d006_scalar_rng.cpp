// D006 fixture: scalar Rng construction inside batch loops.
#include "rng/rng.hpp"

void batch_loop(std::uint64_t seed, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng = packet_rng(seed, i);  // line 6: fires D006
    (void)rng;
  }
  std::size_t i = 0;
  while (i < n) {
    Rng fresh(seed + i);  // line 11: fires D006
    (void)fresh;
    ++i;
  }
}

void sanctioned_loop(std::uint64_t seed, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    // oblv-lint: allow(D006) scalar reference arm of the bit-identity test
    Rng rng = packet_rng(seed, i);  // suppressed
    (void)rng;
  }
}

void hoisted_engine_is_fine(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);  // outside any loop: no finding
  for (std::size_t i = 0; i < n; ++i) {
    rng.next_u64();  // reuse, no construction
  }
  RngLanes lanes;  // the lane rng itself never matches
  for (std::size_t i = 0; i < n; ++i) {
    consume(lanes);
  }
}

void reference_binding_is_fine(Rng& shared, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    Rng& alias = shared;  // reference, not a construction
    alias.next_u64();
  }
}
