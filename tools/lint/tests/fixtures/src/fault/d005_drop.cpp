// D005 fixture: drop/requeue events with and without fault.* counters.
// Functions are spaced so one site's counter cannot leak into another
// site's +/-6-line window.
#include <cstdint>

struct Result {
  std::int64_t dropped = 0;
  std::int64_t wait_until = 0;  // declaration: not a requeue event
};

void uncounted_drop(Result& result) {
  ++result.dropped;  // line 12: fires, no counter anywhere near
}

//
//
//
//

void counted_drop(Result& result) {
  ++result.dropped;
  OBLV_COUNTER_ADD("fault.drops", 1);  // within the window: clean
}

//
//
//
//

void allowed_drop(Result& result) {
  // oblv-lint: allow(D005) router already counted this into fault.drops
  ++result.dropped;
}

//
//
//
//

int uncounted_status() {
  return FaultRouteStatus::kDropped;  // line 41: fires
}

//
//
//
//

void uncounted_requeue(Result& result) {
  result.wait_until = 3;  // line 50: fires (requeue, no counter)
}

//
//
//
//

void counted_requeue(Result& result, std::int64_t step) {
  OBLV_COUNTER_ADD("fault.backoff_steps", 4);
  result.wait_until = step + 4;  // counter one line up: clean
}

//
//
//
//

void merge_tallies(Result& stats, const Result& local) {
  stats.dropped += local.dropped;  // tally-to-tally merge: clean
}

//
//
//
//

void postfix_drop(Result& result) {
  result.dropped++;  // line 78: fires
}
