// Fixture: D003 std::function on a routing hot path.
#include <functional>

// A comment mentioning std::function must not fire (the real
// hierarchical.cpp has exactly such a comment).
using Visitor = std::function<void(int)>;  // line 6: fires D003

void visit_all(const Visitor& visit) { visit(0); }

// oblv-lint: allow(D003) cold path: test-only enumeration helper
void visit_allowlisted(const std::function<void(int)>& visit) {  // suppressed
  visit(1);
}

template <typename Fn>
void visit_fast(Fn&& visit) {  // template callable: no finding
  visit(2);
}
