// D004 fixture: per-call container allocation inside route*_into bodies.
#include <vector>

namespace fixture {

struct Region {};
struct Scratch {
  std::vector<Region> chain;
};

// Definition with a by-value vector local AND growth onto it: two findings.
void route_into(int s, int t, Scratch& scratch) {
  std::vector<Region> chain;  // line 13: fresh local
  chain.push_back(Region{});  // line 14: growth on the fresh local
  (void)s;
  (void)t;
  (void)scratch;
}

// Scratch-threaded twin: reference binding + reuse, no findings.
void route_segments_into(int s, int t, Scratch& scratch) {
  std::vector<Region>& chain = scratch.chain;
  chain.push_back(Region{});
  (void)s;
  (void)t;
}

// Justified allocation is allowed through the escape hatch.
void route_into_impl(int s, int t) {
  // oblv-lint: allow(D004) cold path, only reached on cache rebuild
  std::vector<Region> rebuilt;
  rebuilt.push_back(Region{});
  (void)s;
  (void)t;
}

// Call sites and declarations must not be treated as definitions.
void route_into(int s, int t, Scratch& scratch);
void caller(Scratch& scratch) {
  std::vector<Region> outside;  // not a route*_into body: fine
  route_into(1, 2, scratch);
  outside.push_back(Region{});
}

}  // namespace fixture
