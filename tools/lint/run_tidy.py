#!/usr/bin/env python3
"""clang-tidy gate with a per-file suppression baseline.

Runs clang-tidy (checks from the repo's .clang-tidy) over every src/
translation unit in the compilation database and compares the warning
counts against tools/lint/tidy_baseline.json, keyed

    { "<repo-relative file>": { "<check-name>": <count>, ... }, ... }

The gate is *zero new warnings*: any (file, check) pair whose count
exceeds the baseline fails the run. Counts below the baseline are
reported so the baseline can be ratcheted down with update_baseline.py.

Results are cached per translation unit under --cache-dir, keyed on a
hash of (clang-tidy version, .clang-tidy config, compile command, file
contents). Header edits are *not* part of the key, so CI keys the cache
directory on a hash of all sources; locally, delete the cache after
header-heavy changes.

clang-tidy is not part of the repo's build prerequisites: without
--require a missing binary is a clean skip (exit 0) so `cmake --build
build --target tidy` stays usable on build-only machines; CI passes
--require to turn that into a failure.

Exit status: 0 gate passed (or tool skipped), 1 new warnings, 2 usage
error, 3 clang-tidy missing with --require.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import json
import os
import re
import shlex
import shutil
import subprocess
import sys
from pathlib import Path

WARNING_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[\w.,-]+)\]\s*$")

TIDY_CANDIDATES = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(22, 13, -1)]


def find_clang_tidy() -> str | None:
    override = os.environ.get("CLANG_TIDY")
    if override:
        return override if shutil.which(override) else None
    for name in TIDY_CANDIDATES:
        if shutil.which(name):
            return name
    return None


def load_compile_db(build_dir: Path) -> list[dict]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        raise SystemExit(
            f"run_tidy: {db_path} not found; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default here)")
    return json.loads(db_path.read_text())


def gate_entries(db: list[dict], root: Path) -> list[dict]:
    """The translation units the gate covers: first-party src/ only."""
    src = (root / "src").resolve()
    seen = set()
    out = []
    for entry in db:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        path = path.resolve()
        if src not in path.parents:
            continue
        if path in seen:
            continue
        seen.add(path)
        entry = dict(entry)
        entry["file"] = str(path)
        out.append(entry)
    return sorted(out, key=lambda e: e["file"])


def entry_command(entry: dict) -> list[str]:
    if "arguments" in entry:
        return list(entry["arguments"])
    return shlex.split(entry["command"])


def cache_key(tidy_version: str, config: str, entry: dict) -> str:
    h = hashlib.sha256()
    h.update(tidy_version.encode())
    h.update(config.encode())
    h.update("\0".join(entry_command(entry)).encode())
    h.update(Path(entry["file"]).read_bytes())
    return h.hexdigest()


def run_one(tidy: str, entry: dict, build_dir: Path, root: Path,
            cache_dir: Path | None, tidy_version: str,
            config: str) -> tuple[str, dict[str, int], str]:
    """Returns (repo-relative file, {check: count}, raw output)."""
    path = Path(entry["file"])
    try:
        rel = str(path.relative_to(root.resolve()))
    except ValueError:
        rel = str(path)

    cache_file = None
    if cache_dir is not None:
        cache_file = cache_dir / f"{cache_key(tidy_version, config, entry)}.json"
        if cache_file.exists():
            cached = json.loads(cache_file.read_text())
            return rel, cached["counts"], cached.get("output", "")

    proc = subprocess.run(
        [tidy, "-p", str(build_dir), "--quiet", str(path)],
        capture_output=True, text=True)
    counts: dict[str, int] = {}
    kept_lines = []
    for line in proc.stdout.splitlines():
        m = WARNING_RE.match(line)
        if not m:
            continue
        # Attribute every diagnostic to the TU that surfaced it, so the
        # baseline stays keyed by things the gate actually re-runs.
        for check in m.group("check").split(","):
            counts[check] = counts.get(check, 0) + 1
        kept_lines.append(line)
    output = "\n".join(kept_lines)
    if cache_file is not None:
        cache_file.write_text(json.dumps({"counts": counts, "output": output}))
    return rel, counts, output


def collect(build_dir: Path, root: Path, cache_dir: Path | None,
            jobs: int, require: bool) -> dict[str, dict[str, int]] | None:
    """Warning counts per file, or None when clang-tidy is unavailable."""
    tidy = find_clang_tidy()
    if tidy is None:
        if require:
            print("run_tidy: clang-tidy not found and --require given",
                  file=sys.stderr)
            sys.exit(3)
        print("run_tidy: clang-tidy not found; skipping (install clang-tidy "
              "or set CLANG_TIDY to run the gate locally)")
        return None

    tidy_version = subprocess.run([tidy, "--version"], capture_output=True,
                                  text=True).stdout.strip()
    config_path = root / ".clang-tidy"
    config = config_path.read_text() if config_path.exists() else ""
    if cache_dir is not None:
        cache_dir.mkdir(parents=True, exist_ok=True)

    entries = gate_entries(load_compile_db(build_dir), root)
    if not entries:
        raise SystemExit("run_tidy: no src/ entries in the compilation database")
    print(f"run_tidy: {tidy} over {len(entries)} translation units")

    results: dict[str, dict[str, int]] = {}
    outputs: list[str] = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(run_one, tidy, e, build_dir, root, cache_dir,
                        tidy_version, config)
            for e in entries
        ]
        for fut in concurrent.futures.as_completed(futures):
            rel, counts, output = fut.result()
            if counts:
                results[rel] = counts
            if output:
                outputs.append(output)
    for chunk in sorted(outputs):
        print(chunk)
    return results


def compare(current: dict[str, dict[str, int]],
            baseline: dict[str, dict[str, int]]) -> tuple[list[str], list[str]]:
    """Returns (regressions, improvements) as printable lines."""
    regressions = []
    improvements = []
    for rel in sorted(set(current) | set(baseline)):
        cur = current.get(rel, {})
        base = baseline.get(rel, {})
        for check in sorted(set(cur) | set(base)):
            c, b = cur.get(check, 0), base.get(check, 0)
            if c > b:
                regressions.append(f"{rel}: {check}: {c} (baseline {b})")
            elif c < b:
                improvements.append(f"{rel}: {check}: {c} (baseline {b})")
    return regressions, improvements


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path, default=Path("build"))
    parser.add_argument("--root", type=Path, default=Path(__file__).resolve().parents[2])
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent / "tidy_baseline.json")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="cache per-TU results here (keyed on content hash)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 3) when clang-tidy is missing")
    parser.add_argument("--findings-out", type=Path, metavar="FILE",
                        help="write the per-file warning counts JSON to FILE "
                             "(written even when clean, for CI artifacts)")
    args = parser.parse_args(argv)

    current = collect(args.build_dir, args.root.resolve(), args.cache_dir,
                      args.jobs, args.require)
    if current is None:
        return 0
    if args.findings_out:
        args.findings_out.write_text(json.dumps(current, indent=2,
                                                sort_keys=True) + "\n")

    baseline: dict[str, dict[str, int]] = {}
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())

    regressions, improvements = compare(current, baseline)
    for line in improvements:
        print(f"run_tidy: below baseline (ratchet down): {line}")
    if improvements:
        print("run_tidy: run tools/lint/update_baseline.py to lock in the wins")
    if regressions:
        print(f"run_tidy: {len(regressions)} new warning count(s) over baseline:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("run_tidy: gate passed (zero new warnings)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
