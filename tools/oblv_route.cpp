// oblv_route -- command-line driver for the library.
//
// Route a workload on a mesh with any algorithm, print the quality report,
// and optionally simulate delivery, render a load heatmap, or save/load
// the problem.
//
// Examples:
//   oblv_route --mesh 64x64 --algorithm hierarchical-2d --workload transpose
//   oblv_route --mesh 32x32x32 --torus --algorithm hierarchical-nd
//              --workload random --simulate
//   oblv_route --mesh 128x128 --algorithm ecube --workload block-exchange
//              --l 16 --heatmap
//   oblv_route --load problem.txt --algorithm valiant --csv
//   oblv_route --mesh 64x64 --workload tornado --save problem.txt
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "analysis/evaluate.hpp"
#include "analysis/heatmap.hpp"
#include "analysis/sketch/stream_account.hpp"
#include "analysis/trials.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_router.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "routing/registry.hpp"
#include "parallel/route_batch.hpp"
#include "simulator/simulator.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workloads/generators.hpp"
#include "workloads/io.hpp"

namespace {

using namespace oblivious;

constexpr const char* kUsage = R"(usage: oblv_route [flags]
  --mesh WxHx...       mesh shape (default 64x64)
  --torus              wrap-around topology
  --algorithm NAME     ecube | random-dim-order | staircase | valiant |
                       bounded-valiant | access-tree | hierarchical-2d |
                       hierarchical-nd | hierarchical-nd-frugal | all
                       (default hierarchical-2d)
  --workload NAME      transpose | bit-reversal | tornado | random |
                       nearest-neighbor | hotspot | block-exchange |
                       cut-straddlers   (default transpose)
  --l N                block-exchange slab thickness (default 8)
  --seed N             RNG seed (default 1)
  --simulate           deliver the packets and report the makespan
  --policy NAME        fifo | furthest-to-go | random-rank (default furthest-to-go)
  --heatmap            render an ASCII edge-load heatmap (2D meshes)
  --csv                emit the metrics row as CSV
  --trials N           randomized re-routings for the trial statistics
                       (default 3 with --metrics-json, else 0)
  --fault-rate P       per-edge failure probability; routes through the
                       fault-aware retry pipeline (default 0 = off)
  --fault-seed N       fault-schedule seed (default: --seed)
  --retry-budget N     max path draws per packet under faults (default 4)
  --backoff-base N     exponential backoff base in steps (default 1)
  --account MODE       congestion accounting: exact | sketch (default
                       exact; sketch bounds memory on gigantic meshes)
  --sketch-bytes N     sketch memory budget in bytes (default 1 MiB)
  --stream N           streaming mode: route N random (src, dst) packets
                       straight into the accountant without materializing
                       demands or paths -- the only mode that can account
                       meshes whose edge count dwarfs RAM (use with
                       --account sketch); skips workload/simulation flags
  --threads N          worker threads for --stream (default 0 = all cores)
  --metrics-json FILE  write an oblv-metrics-v1 JSON report covering the
                       decomposition, routing, accounting, trials and
                       simulation stages (implies --simulate and trials)
  --metrics-table      print the metrics as an aligned table
  --save FILE          write the generated problem and exit
  --load FILE          read the mesh and problem from FILE (overrides --mesh)
  --help               this text
)";

Mesh parse_mesh(const std::string& spec, bool torus) {
  std::vector<std::int64_t> sides;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, 'x')) {
    sides.push_back(std::stoll(part));
  }
  return Mesh(std::move(sides), torus);
}

RoutingProblem make_workload(const Mesh& mesh, const std::string& name,
                             std::int64_t l, Rng& rng) {
  if (name == "transpose") return transpose(mesh);
  if (name == "bit-reversal") return bit_reversal(mesh);
  if (name == "tornado") return tornado(mesh);
  if (name == "random") return random_permutation(mesh, rng);
  if (name == "nearest-neighbor") return nearest_neighbor(mesh, rng);
  if (name == "hotspot") {
    return hotspot(mesh, rng, static_cast<std::size_t>(mesh.num_nodes() / 8));
  }
  if (name == "block-exchange") return block_exchange(mesh, l);
  if (name == "cut-straddlers") return cut_straddlers(mesh);
  throw std::invalid_argument("unknown workload '" + name + "'");
}

SchedulingPolicy parse_policy(const std::string& name) {
  if (name == "fifo") return SchedulingPolicy::kFifo;
  if (name == "furthest-to-go") return SchedulingPolicy::kFurthestToGo;
  if (name == "random-rank") return SchedulingPolicy::kRandomRank;
  throw std::invalid_argument("unknown policy '" + name + "'");
}

AccountingOptions parse_accounting(const Flags& flags) {
  const auto mode = accounting_mode_from_name(flags.get("account", "exact"));
  if (!mode.has_value()) {
    throw std::invalid_argument("--account must be 'exact' or 'sketch'");
  }
  AccountingOptions accounting;
  accounting.mode = *mode;
  accounting.sketch.sketch_bytes = static_cast<std::size_t>(
      flags.get_int("sketch-bytes",
                    static_cast<std::int64_t>(SketchConfig{}.sketch_bytes)));
  return accounting;
}

// --stream: route-and-account without ever materializing the demand set
// or the paths; the only pipeline that works when exact per-edge arrays
// (LoadAccountant::exact_bytes) cannot be allocated at all.
int run_stream(const Flags& flags) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Mesh mesh =
      parse_mesh(flags.get("mesh", "64x64"), flags.get_bool("torus"));
  const AccountingOptions accounting = parse_accounting(flags);
  const std::string algo_name = flags.get("algorithm", "random-dim-order");
  const auto a = algorithm_from_name(algo_name);
  if (!a.has_value()) {
    std::cerr << "unknown algorithm '" << algo_name << "'\n" << kUsage;
    return 1;
  }
  const auto router = make_router(*a, mesh);
  const std::size_t packets =
      static_cast<std::size_t>(flags.get_int("stream", 0));

  std::cout << "network : " << mesh.describe() << " (exact accounting would need "
            << LoadAccountant::exact_bytes(mesh) << " bytes)\n";
  std::cout << "stream  : " << packets << " random packets, "
            << accounting_mode_name(accounting.mode) << " accounting\n";

  const std::unique_ptr<LoadAccountant> accountant =
      LoadAccountant::create(mesh, accounting.mode, accounting.sketch);
  ThreadPool pool(static_cast<std::size_t>(flags.get_int("threads", 0)));
  StreamAccountOptions sopts;
  sopts.seed = seed;
  const StreamAccountResult res =
      route_and_account(*router, DemandSource::random_pairs(mesh, packets, seed),
                        pool, sopts, *accountant);

  std::cout << "routed  : " << res.packets << " packets in " << res.seconds
            << " s ("
            << static_cast<double>(res.packets) / std::max(res.seconds, 1e-9)
            << " pkt/s, " << res.blocks << " blocks)\n";
  std::cout << "load    : max " << accountant->max_load() << ", p50 "
            << accountant->load_quantile(0.5) << ", p99 "
            << accountant->load_quantile(0.99) << "\n";
  std::cout << "memory  : " << accountant->memory_bytes() << " bytes";
  if (accounting.mode == AccountingMode::kSketch) {
    std::cout << " (budget " << accounting.sketch.sketch_bytes
              << "); error bound +" << accountant->error_bound()
              << " per estimate, failure prob "
              << accountant->failure_probability();
  }
  std::cout << "\n";

  if (flags.has("metrics-json")) {
    accountant->record_metrics("loads");
    obs::write_metrics_json_file(
        flags.get("metrics-json", ""),
        {{"tool", "oblv_route"},
         {"mesh", mesh.describe()},
         {"algorithm", algo_name},
         {"workload", "stream"},
         {"seed", std::to_string(seed)}},
        obs::MetricsRegistry::global().snapshot());
    std::cout << "metrics written to " << flags.get("metrics-json", "") << "\n";
  }
  return 0;
}

int run(const Flags& flags) {
  if (flags.get_bool("help")) {
    std::cout << kUsage;
    return 0;
  }
  if (flags.has("stream")) return run_stream(flags);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const AccountingOptions accounting = parse_accounting(flags);

  Mesh mesh({1});
  RoutingProblem problem;
  if (flags.has("load")) {
    std::tie(mesh, problem) = read_problem_file(flags.get("load", ""));
  } else {
    mesh = parse_mesh(flags.get("mesh", "64x64"), flags.get_bool("torus"));
    Rng wrng(seed);
    problem = make_workload(mesh, flags.get("workload", "transpose"),
                            flags.get_int("l", 8), wrng);
  }
  std::cout << "network : " << mesh.describe() << "\n";
  std::cout << "packets : " << problem.size() << "\n";

  if (flags.has("save")) {
    std::ofstream out(flags.get("save", ""));
    write_problem(out, mesh, problem);
    std::cout << "problem written to " << flags.get("save", "") << "\n";
    return 0;
  }

  std::vector<Algorithm> algorithms;
  const std::string algo_name = flags.get("algorithm", "hierarchical-2d");
  if (algo_name == "all") {
    algorithms = algorithms_for(mesh);
  } else {
    const auto a = algorithm_from_name(algo_name);
    if (!a.has_value()) {
      std::cerr << "unknown algorithm '" << algo_name << "'\n" << kUsage;
      return 1;
    }
    algorithms = {*a};
  }

  // --metrics-json wants all four pipeline stages represented in the
  // report, so it forces a trial pass and a delivery simulation even when
  // the corresponding flags are absent.
  const bool want_metrics =
      flags.has("metrics-json") || flags.get_bool("metrics-table");
  const int trials =
      static_cast<int>(flags.get_int("trials", want_metrics ? 3 : 0));

  // Fault-aware pipeline: at --fault-rate 0 this block is inert and the
  // tool is draw-for-draw identical to the fault-free engine.
  const double fault_rate = flags.get_double("fault-rate", 0.0);
  if (fault_rate < 0.0 || fault_rate > 1.0) {
    std::cerr << "--fault-rate must be in [0, 1]\n";
    return 1;
  }
  std::optional<FaultModel> faults;
  RetryPolicy retry;
  if (fault_rate > 0.0) {
    FaultConfig config;
    config.edge_fail_prob = fault_rate;
    config.horizon = 1;  // stationary static snapshot
    config.seed = static_cast<std::uint64_t>(
        flags.get_int("fault-seed", static_cast<std::int64_t>(seed)));
    faults.emplace(mesh, config);
    retry.max_attempts =
        static_cast<int>(flags.get_int("retry-budget", retry.max_attempts));
    retry.backoff_base = flags.get_int("backoff-base", retry.backoff_base);
    std::cout << "faults  : rate " << fault_rate << ", "
              << faults->failures_injected()
              << " fail events, retry budget " << retry.max_attempts
              << ", backoff base " << retry.backoff_base << "\n";
  }

  const double lb = best_lower_bound(mesh, problem);
  std::cout << "C* bound: >= " << lb << "\n\n";
  Table table({"algorithm", "C", "C/C*", "D", "max stretch", "mean stretch",
               "bits/pkt", "route ms"});
  for (const Algorithm a : algorithms) {
    const auto router = make_router(a, mesh);
    RouteAllOptions options;
    options.seed = seed;
    RunningStats bits;
    std::vector<Path> paths;
    RoutingProblem measured_problem;
    if (faults.has_value()) {
      // Retry-with-rerandomization recovery; quality metrics cover the
      // delivered traffic (a dropped packet carries no load).
      const FaultAwareRouter fault_router(*router, *faults, retry, 0);
      RouteScratch scratch;
      std::int64_t dropped = 0;
      std::int64_t retried = 0;
      std::int64_t detoured = 0;
      for (std::size_t i = 0; i < problem.demands.size(); ++i) {
        const Demand& demand = problem.demands[i];
        Rng rng = packet_rng(seed, i);
        Path out;
        const FaultRouteOutcome outcome = fault_router.route_with_faults(
            demand.src, demand.dst, rng, scratch, out);
        if (outcome.status == FaultRouteStatus::kRetried) ++retried;
        if (outcome.status == FaultRouteStatus::kDetoured) ++detoured;
        if (outcome.delivered()) {
          paths.push_back(std::move(out));
          measured_problem.demands.push_back(demand);
        } else {
          ++dropped;
        }
      }
      std::cout << router->name() << ": delivered " << paths.size() << "/"
                << problem.size() << " under faults (" << retried
                << " retried, " << detoured << " detoured, " << dropped
                << " dropped)\n";
    } else {
      paths = route_all(mesh, *router, problem, options, &bits);
      measured_problem = problem;
    }
    const RouteSetMetrics m = [&] {
      RouteSetMetrics metrics = measure_paths(mesh, measured_problem, paths, lb);
      metrics.algorithm = router->name();
      metrics.bits_per_packet = bits;
      return metrics;
    }();
    table.row()
        .add(m.algorithm)
        .add(m.congestion)
        .add(m.congestion_ratio, 2)
        .add(m.dilation)
        .add(m.max_stretch, 2)
        .add(m.mean_stretch, 2)
        .add(m.bits_per_packet.mean(), 1)
        .add(m.routing_seconds * 1e3, 1);

    if (trials > 0) {
      const TrialSummary summary = evaluate_trials(mesh, *router, problem,
                                                   trials, seed, nullptr,
                                                   accounting);
      std::cout << m.algorithm << ": " << trials << " trials, congestion "
                << summary.congestion.mean() << " +/- "
                << summary.congestion.stddev() << " (max "
                << summary.congestion.max() << ")\n";
    }
    if (flags.get_bool("simulate") || want_metrics) {
      SimulationOptions sim_options;
      sim_options.policy =
          parse_policy(flags.get("policy", "furthest-to-go"));
      sim_options.seed = seed;
      sim_options.accounting = accounting;
      const SimulationResult sim = simulate(mesh, paths, sim_options);
      std::cout << m.algorithm << ": delivered in " << sim.makespan
                << " steps (max(C,D) = "
                << std::max(sim.congestion, sim.dilation)
                << ", mean latency " << sim.latency.mean() << ")\n";
    }
    if (flags.get_bool("heatmap") && mesh.dim() == 2) {
      EdgeLoadMap loads(mesh);
      loads.add_paths(paths);
      std::cout << m.algorithm << " load heatmap:\n"
                << render_load_heatmap(loads) << "\n";
    }
  }
  if (flags.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }

  if (want_metrics) {
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::global().snapshot();
    if (flags.get_bool("metrics-table")) {
      std::cout << "\n" << obs::render_metrics_table(snapshot);
    }
    if (flags.has("metrics-json")) {
      const std::string path = flags.get("metrics-json", "");
      obs::write_metrics_json_file(
          path,
          {{"tool", "oblv_route"},
           {"mesh", mesh.describe()},
           {"algorithm", algo_name},
           {"workload", flags.has("load") ? "file:" + flags.get("load", "")
                                          : flags.get("workload", "transpose")},
           {"seed", std::to_string(seed)}},
          snapshot);
      std::cout << "metrics written to " << path << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Flags::parse(
        argc, argv,
        {"mesh", "torus", "algorithm", "workload", "l", "seed", "simulate",
         "policy", "heatmap", "csv", "save", "load", "trials", "metrics-json",
         "metrics-table", "fault-rate", "fault-seed", "retry-budget",
         "backoff-base", "account", "sketch-bytes", "stream", "threads",
         "help"}));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << kUsage;
    return 1;
  }
}
